//! Routing algorithms: deterministic XY/YX dimension order, O1TURN, and
//! west-first turn-model adaptive routing.
//!
//! The paper's baseline uses XY (Table 2) and §3.3 discusses how routing
//! strategies interact with non-blocking selective de/compression; the
//! additional algorithms here support that study. All are minimal, so
//! `RC_Hop` (Eq. 2) remains the Manhattan distance.

use crate::topology::{Direction, Mesh, NodeId};

/// A routing algorithm for the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingAlgorithm {
    /// Dimension-order: X first, then Y (Table 2 default). Deadlock-free
    /// per virtual network.
    #[default]
    Xy,
    /// Dimension-order: Y first, then X.
    Yx,
    /// O1TURN: each packet picks XY or YX (by packet id parity), which
    /// balances load across the two dimension orders. Needs the two
    /// virtual networks our class split already provides.
    O1Turn,
    /// West-first turn model: all westward hops first, then adaptive
    /// among the remaining minimal directions (most downstream credits
    /// wins). Deadlock-free for wormhole switching.
    WestFirst,
}

/// Computes the output port from `here` toward `dst` under XY routing:
/// first traverse the X dimension (columns), then Y (rows); `Local` when
/// already at the destination.
///
/// XY routing on a mesh is deadlock-free within one virtual network,
/// which is why Table 2 pairs it with only two VCs.
///
/// ```
/// use disco_noc::routing::xy_route;
/// use disco_noc::topology::{Direction, Mesh, NodeId};
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(xy_route(&mesh, NodeId(0), NodeId(3)), Direction::East);
/// assert_eq!(xy_route(&mesh, NodeId(3), NodeId(15)), Direction::South);
/// assert_eq!(xy_route(&mesh, NodeId(9), NodeId(9)), Direction::Local);
/// ```
pub fn xy_route(mesh: &Mesh, here: NodeId, dst: NodeId) -> Direction {
    let (hc, hr) = mesh.coords(here);
    let (dc, dr) = mesh.coords(dst);
    if hc < dc {
        Direction::East
    } else if hc > dc {
        Direction::West
    } else if hr < dr {
        Direction::South
    } else if hr > dr {
        Direction::North
    } else {
        Direction::Local
    }
}

/// Computes the output port under YX dimension-order routing.
pub fn yx_route(mesh: &Mesh, here: NodeId, dst: NodeId) -> Direction {
    let (hc, hr) = mesh.coords(here);
    let (dc, dr) = mesh.coords(dst);
    if hr < dr {
        Direction::South
    } else if hr > dr {
        Direction::North
    } else if hc < dc {
        Direction::East
    } else if hc > dc {
        Direction::West
    } else {
        Direction::Local
    }
}

/// Routes one hop under `algorithm`. `packet_salt` differentiates
/// packets for O1TURN; `credits` reports downstream free slots for the
/// adaptive choice (higher = preferred).
pub fn route(
    algorithm: RoutingAlgorithm,
    mesh: &Mesh,
    here: NodeId,
    dst: NodeId,
    packet_salt: u64,
    credits: impl Fn(Direction) -> usize,
) -> Direction {
    match algorithm {
        RoutingAlgorithm::Xy => xy_route(mesh, here, dst),
        RoutingAlgorithm::Yx => yx_route(mesh, here, dst),
        RoutingAlgorithm::O1Turn => {
            if packet_salt.is_multiple_of(2) {
                xy_route(mesh, here, dst)
            } else {
                yx_route(mesh, here, dst)
            }
        }
        RoutingAlgorithm::WestFirst => west_first_route(mesh, here, dst, credits),
    }
}

/// West-first turn model: if the destination lies to the west, go west
/// (deterministic); otherwise adaptively pick among the minimal
/// directions (East/North/South) the one with the most credits.
pub fn west_first_route(
    mesh: &Mesh,
    here: NodeId,
    dst: NodeId,
    credits: impl Fn(Direction) -> usize,
) -> Direction {
    let (hc, hr) = mesh.coords(here);
    let (dc, dr) = mesh.coords(dst);
    if dc < hc {
        return Direction::West;
    }
    let vertical = if dr > hr {
        Some(Direction::South)
    } else if dr < hr {
        Some(Direction::North)
    } else {
        None
    };
    match (dc > hc, vertical) {
        // Both dimensions remain: adaptively prefer the better-credited
        // hop (ties go vertical, matching the historical arbitration).
        (true, Some(v)) if credits(v) >= credits(Direction::East) => v,
        (true, _) => Direction::East,
        (false, Some(v)) => v,
        (false, None) => Direction::Local,
    }
}

/// Every output direction `algorithm` may select from `here` toward
/// `dst`, over all packet salts and credit states.
///
/// This is the routing *relation* rather than one sampled decision, and
/// it is what static deadlock analysis needs: the channel dependency
/// graph must contain an edge for every direction the router could
/// legally pick at run time (O1TURN contributes both dimension orders,
/// west-first every minimal adaptive candidate).
///
/// ```
/// use disco_noc::routing::{route_choices, RoutingAlgorithm};
/// use disco_noc::topology::{Direction, Mesh, NodeId};
///
/// let mesh = Mesh::new(4, 4);
/// let xy = route_choices(RoutingAlgorithm::Xy, &mesh, NodeId(0), NodeId(15));
/// assert_eq!(xy, vec![Direction::East]);
/// let o1 = route_choices(RoutingAlgorithm::O1Turn, &mesh, NodeId(0), NodeId(15));
/// assert_eq!(o1, vec![Direction::East, Direction::South]);
/// ```
pub fn route_choices(
    algorithm: RoutingAlgorithm,
    mesh: &Mesh,
    here: NodeId,
    dst: NodeId,
) -> Vec<Direction> {
    match algorithm {
        RoutingAlgorithm::Xy => vec![xy_route(mesh, here, dst)],
        RoutingAlgorithm::Yx => vec![yx_route(mesh, here, dst)],
        RoutingAlgorithm::O1Turn => {
            let a = xy_route(mesh, here, dst);
            let b = yx_route(mesh, here, dst);
            if a == b {
                vec![a]
            } else {
                vec![a, b]
            }
        }
        RoutingAlgorithm::WestFirst => {
            let (hc, hr) = mesh.coords(here);
            let (dc, dr) = mesh.coords(dst);
            if hc == dc && hr == dr {
                return vec![Direction::Local];
            }
            if dc < hc {
                return vec![Direction::West];
            }
            let mut candidates = Vec::with_capacity(2);
            if dc > hc {
                candidates.push(Direction::East);
            }
            if dr > hr {
                candidates.push(Direction::South);
            } else if dr < hr {
                candidates.push(Direction::North);
            }
            candidates
        }
    }
}

/// Remaining hop count from `here` to `dst` — the `RC_Hop` term of the
/// decompression confidence equation (Eq. 2). All supported algorithms
/// are minimal, so this is the Manhattan distance.
pub fn remaining_hops(mesh: &Mesh, here: NodeId, dst: NodeId) -> usize {
    mesh.hops(here, dst)
}

/// Fault-aware escape routing: detours around a dead link on the primary
/// route where a turn-model-legal detour exists.
///
/// The escape relation is deliberately conservative so that the union of
/// the primary dimension-order routes and every escape stays acyclic (the
/// `disco-verify` channel-dependency pass proves this for the shipped
/// combination): only *eastward* primary hops are escaped, via a vertical
/// detour, which never introduces a turn into West and keeps the
/// west-first turn discipline intact. A dead West or vertical link has no
/// west-first-legal detour, so the packet proceeds onto the dead link and
/// is black-holed there — detection and NI retransmission recover it, and
/// retry exhaustion bounds the loss.
///
/// The detour prefers the minimal vertical direction (stays minimal);
/// when the destination is in the same row — or that hop is itself dead
/// or off-mesh — it sidesteps one row (South, then North) and lets
/// dimension-order routing resume east from there. Escapes are a pure
/// function of `(here, dst)`, so per-destination channel walks see a
/// deterministic relation.
pub fn escape_route(
    mesh: &Mesh,
    here: NodeId,
    dst: NodeId,
    primary: Direction,
    dead: impl Fn(NodeId, Direction) -> bool,
) -> Direction {
    if primary == Direction::Local || !dead(here, primary) {
        return primary;
    }
    if primary != Direction::East {
        return primary;
    }
    let (_, hr) = mesh.coords(here);
    let (_, dr) = mesh.coords(dst);
    let minimal_vertical = if dr > hr {
        Some(Direction::South)
    } else if dr < hr {
        Some(Direction::North)
    } else {
        None
    };
    if let Some(v) = minimal_vertical {
        if mesh.neighbor(here, v).is_some() && !dead(here, v) {
            return v;
        }
    }
    for v in [Direction::South, Direction::North] {
        if Some(v) == minimal_vertical {
            continue;
        }
        if mesh.neighbor(here, v).is_some() && !dead(here, v) {
            return v;
        }
    }
    primary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_before_y() {
        let mesh = Mesh::new(4, 4);
        // From 0 (0,0) to 15 (3,3): go East until column matches.
        let mut here = NodeId(0);
        let dst = NodeId(15);
        let mut path = Vec::new();
        loop {
            let dir = xy_route(&mesh, here, dst);
            if dir == Direction::Local {
                break;
            }
            path.push(dir);
            here = mesh.neighbor(here, dir).expect("route stays in mesh");
        }
        assert_eq!(
            path,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South,
                Direction::South
            ]
        );
    }

    #[test]
    fn route_length_equals_manhattan() {
        let mesh = Mesh::new(5, 3);
        for a in 0..mesh.nodes() {
            for b in 0..mesh.nodes() {
                let (mut here, dst) = (NodeId(a), NodeId(b));
                let mut steps = 0;
                while xy_route(&mesh, here, dst) != Direction::Local {
                    here = mesh.neighbor(here, xy_route(&mesh, here, dst)).unwrap();
                    steps += 1;
                    assert!(steps <= mesh.nodes(), "routing loop");
                }
                assert_eq!(steps, mesh.hops(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn remaining_hops_matches_mesh() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(remaining_hops(&mesh, NodeId(0), NodeId(15)), 6);
    }

    #[test]
    fn yx_routes_y_first() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(yx_route(&mesh, NodeId(0), NodeId(15)), Direction::South);
        assert_eq!(yx_route(&mesh, NodeId(12), NodeId(15)), Direction::East);
        assert_eq!(yx_route(&mesh, NodeId(5), NodeId(5)), Direction::Local);
    }

    #[test]
    fn all_algorithms_are_minimal() {
        let mesh = Mesh::new(4, 4);
        for alg in [
            RoutingAlgorithm::Xy,
            RoutingAlgorithm::Yx,
            RoutingAlgorithm::O1Turn,
            RoutingAlgorithm::WestFirst,
        ] {
            for a in 0..16 {
                for b in 0..16 {
                    for salt in [0u64, 1] {
                        let mut here = NodeId(a);
                        let dst = NodeId(b);
                        let mut steps = 0;
                        loop {
                            let dir = route(alg, &mesh, here, dst, salt, |_| 4);
                            if dir == Direction::Local {
                                break;
                            }
                            here = mesh.neighbor(here, dir).expect("in mesh");
                            steps += 1;
                            assert!(steps <= 12, "{alg:?} non-minimal {a}->{b}");
                        }
                        assert_eq!(steps, mesh.hops(NodeId(a), NodeId(b)), "{alg:?} {a}->{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn west_first_never_turns_to_west() {
        // Once moving non-west, a west-first route must not need west
        // again: destinations west of the source start with West hops.
        let mesh = Mesh::new(4, 4);
        for a in 0..16 {
            for b in 0..16 {
                let mut here = NodeId(a);
                let dst = NodeId(b);
                let mut seen_non_west = false;
                loop {
                    let dir = west_first_route(&mesh, here, dst, |_| 1);
                    match dir {
                        Direction::Local => break,
                        Direction::West => {
                            assert!(!seen_non_west, "illegal turn back west {a}->{b}")
                        }
                        _ => seen_non_west = true,
                    }
                    here = mesh.neighbor(here, dir).expect("in mesh");
                }
            }
        }
    }

    #[test]
    fn west_first_adapts_to_credits() {
        let mesh = Mesh::new(4, 4);
        // From 0 to 15: East and South both minimal; pick the one with
        // more credits.
        let east_full = west_first_route(&mesh, NodeId(0), NodeId(15), |d| {
            if d == Direction::East {
                8
            } else {
                1
            }
        });
        assert_eq!(east_full, Direction::East);
        let south_full = west_first_route(&mesh, NodeId(0), NodeId(15), |d| {
            if d == Direction::South {
                8
            } else {
                1
            }
        });
        assert_eq!(south_full, Direction::South);
    }

    #[test]
    fn escape_detours_dead_east_links() {
        let mesh = Mesh::new(4, 4);
        let dead = |n: NodeId, d: Direction| n == NodeId(5) && d == Direction::East;
        // 5 -> 7 (same row): East is dead, sidestep South and resume.
        assert_eq!(
            escape_route(&mesh, NodeId(5), NodeId(7), Direction::East, dead),
            Direction::South
        );
        // 5 -> 3 (row above): the minimal vertical wins.
        assert_eq!(
            escape_route(&mesh, NodeId(5), NodeId(3), Direction::East, dead),
            Direction::North
        );
        // Alive links pass through untouched.
        assert_eq!(
            escape_route(&mesh, NodeId(6), NodeId(7), Direction::East, dead),
            Direction::East
        );
        assert_eq!(
            escape_route(&mesh, NodeId(5), NodeId(5), Direction::Local, dead),
            Direction::Local
        );
    }

    #[test]
    fn escape_walks_deliver_around_a_dead_link() {
        // Every (src, dst) pair still reaches its destination under
        // XY + escape with one dead East link, except pairs that must
        // cross a dead *West* link (none here).
        let mesh = Mesh::new(4, 4);
        let dead = |n: NodeId, d: Direction| n == NodeId(5) && d == Direction::East;
        for a in 0..16 {
            for b in 0..16 {
                let mut here = NodeId(a);
                let dst = NodeId(b);
                let mut steps = 0;
                loop {
                    let primary = xy_route(&mesh, here, dst);
                    let dir = escape_route(&mesh, here, dst, primary, dead);
                    if dir == Direction::Local {
                        break;
                    }
                    assert!(!dead(here, dir), "walked onto the dead link {a}->{b}");
                    here = mesh.neighbor(here, dir).expect("escape stays in mesh");
                    steps += 1;
                    assert!(steps <= 16, "escape walk loops {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn escape_never_introduces_west_turns() {
        // The acyclicity argument: no escape ever returns West, so the
        // XY ∪ escape union contains no turn into the West direction.
        let mesh = Mesh::new(4, 4);
        let dead = |n: NodeId, _: Direction| n.0.is_multiple_of(3);
        for a in 0..16 {
            for b in 0..16 {
                let primary = xy_route(&mesh, NodeId(a), NodeId(b));
                let dir = escape_route(&mesh, NodeId(a), NodeId(b), primary, dead);
                if dir == Direction::West {
                    assert_eq!(primary, Direction::West, "escape invented a West hop");
                }
            }
        }
    }

    #[test]
    fn dead_west_link_has_no_escape() {
        // West-first discipline leaves no legal detour: the primary is
        // returned unchanged and the recovery layer handles the loss.
        let mesh = Mesh::new(4, 4);
        let dead = |n: NodeId, d: Direction| n == NodeId(1) && d == Direction::West;
        assert_eq!(
            escape_route(&mesh, NodeId(1), NodeId(0), Direction::West, dead),
            Direction::West
        );
    }

    #[test]
    fn o1turn_splits_by_salt() {
        let mesh = Mesh::new(4, 4);
        let even = route(
            RoutingAlgorithm::O1Turn,
            &mesh,
            NodeId(0),
            NodeId(15),
            0,
            |_| 1,
        );
        let odd = route(
            RoutingAlgorithm::O1Turn,
            &mesh,
            NodeId(0),
            NodeId(15),
            1,
            |_| 1,
        );
        assert_eq!(even, Direction::East);
        assert_eq!(odd, Direction::South);
    }
}
