//! The radix-parametric virtual-channel router (Fig. 2a, minus the
//! DISCO units, which `disco-core` layers on through the extension
//! API). The paper's mesh instantiates it at radix 5 (N/S/E/W/Local);
//! the ring kinds at radix 3; the concentrated mesh at 4 + c.
//!
//! Per cycle the router performs route computation (RC) for new head
//! flits, virtual-channel allocation (VA), and switch allocation (SA)
//! with per-class priorities — all three stages run as the pure
//! [`crate::phase::compute_router`] function over this struct's
//! cycle-start snapshot, and the resulting action lists are applied by
//! [`crate::commit`]. Pipeline depth is modelled by delaying a flit's
//! readiness after each hop. Credit-based backpressure tracks the free
//! slots of each downstream virtual channel.

use crate::config::NocConfig;
use crate::packet::{Flit, PacketId};
use crate::topology::{NodeId, PortId};
use std::collections::VecDeque;

/// Progress of one input virtual channel's front packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VcState {
    /// No packet being processed.
    Idle,
    /// Route computed; waiting for an output VC.
    Routed(PortId),
    /// Output VC acquired; flits stream through the switch.
    Active { out: PortId, out_vc: usize },
}

/// One input virtual channel.
#[derive(Debug, Clone)]
pub struct Vc {
    pub(crate) buffer: VecDeque<Flit>,
    pub(crate) state: VcState,
    /// DISCO shadow-invalid bit: a locked VC is under committed in-network
    /// de/compression and is excluded from switch allocation (§3.2 step 3).
    pub(crate) locked: bool,
}

impl Vc {
    /// Builds an empty VC with its buffer storage preallocated to the
    /// configured depth, so steady-state flit acceptance never grows the
    /// deque (the zero-allocation hot-loop contract).
    fn with_depth(depth: usize) -> Self {
        Vc {
            buffer: VecDeque::with_capacity(depth),
            state: VcState::Idle,
            locked: false,
        }
    }

    /// Packet at the front of the buffer, if any.
    pub fn front_packet(&self) -> Option<PacketId> {
        self.buffer.front().map(|f| f.packet)
    }

    /// Buffered flit count.
    pub fn occupancy(&self) -> usize {
        self.buffer.len()
    }

    /// True if the DISCO shadow lock is set.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// The output port this VC's front packet is routed toward, once RC
    /// has run.
    pub fn routed_port(&self) -> Option<PortId> {
        match self.state {
            VcState::Idle => None,
            VcState::Routed(p) => Some(p),
            VcState::Active { out, .. } => Some(out),
        }
    }

    /// True if the tail flit of `packet` is buffered here.
    pub fn has_tail_of(&self, packet: PacketId) -> bool {
        self.buffer
            .iter()
            .any(|f| f.packet == packet && f.kind.is_tail())
    }

    /// True if the front flit is the head of its packet (the packet has
    /// not started leaving — a precondition for in-network compression).
    pub fn front_is_head(&self) -> bool {
        self.buffer.front().is_some_and(|f| f.kind.is_head())
    }

    /// Buffered flit count belonging to `packet`.
    pub fn resident_of(&self, packet: PacketId) -> usize {
        self.buffer.iter().filter(|f| f.packet == packet).count()
    }

    /// Distinct packets resident in this buffer, in queue order.
    pub fn resident_packets(&self) -> Vec<PacketId> {
        self.resident_packets_iter().collect()
    }

    /// Iterator form of [`resident_packets`](Self::resident_packets) —
    /// the candidate-scan hot loop uses this to avoid a per-VC
    /// allocation.
    pub fn resident_packets_iter(&self) -> impl Iterator<Item = PacketId> + '_ {
        let mut prev: Option<PacketId> = None;
        self.buffer.iter().filter_map(move |f| {
            if prev == Some(f.packet) {
                None
            } else {
                prev = Some(f.packet);
                Some(f.packet)
            }
        })
    }
}

/// A router of any topology. Fields are crate-visible so the pure
/// compute phase ([`crate::phase`]) can snapshot them and the commit
/// pass ([`crate::commit`]) can apply action lists; everything else
/// goes through the public accessors.
#[derive(Debug, Clone)]
pub struct Router {
    pub(crate) node: NodeId,
    pub(crate) config: NocConfig,
    /// Ports on this router (the topology's radix), local ports
    /// included.
    pub(crate) ports: usize,
    /// Ports `0..link_ports` face other routers; `link_ports..ports`
    /// are local NI ports with unbounded ejection credits.
    pub(crate) link_ports: usize,
    /// Input VCs in struct-of-arrays layout, flattened `port * vcs + vc`.
    /// One contiguous allocation keeps the compute phase's inner loops on
    /// a single cache-friendly array instead of chasing per-port Vecs.
    pub(crate) inputs: Vec<Vc>,
    /// Which (in_port, in_vc) currently owns each output VC, flattened
    /// `out_port * vcs + out_vc`.
    pub(crate) out_alloc: Vec<Option<(usize, usize)>>,
    /// Free slots in the downstream input buffer, flattened
    /// `out_port * vcs + out_vc`.
    pub(crate) credits: Vec<usize>,
    /// Per-output round-robin pointer over flattened (port, vc) inputs.
    pub(crate) rr_sa: Vec<usize>,
    /// Switch-allocation losers of the last cycle: the idling packets the
    /// DISCO arbitrator filters (§3.2 step 1).
    pub(crate) sa_losers: Vec<(usize, usize)>,
    /// Total flits buffered across all input VCs, maintained on every
    /// accept/pop/reshape. `0` lets the compute phase skip the router
    /// outright — on large networks most routers are idle most cycles.
    pub(crate) buffered: usize,
}

impl Router {
    pub(crate) fn new(node: NodeId, config: NocConfig, ports: usize, link_ports: usize) -> Self {
        let inputs = (0..ports * config.vcs)
            .map(|_| Vc::with_depth(config.buffer_depth))
            .collect();
        let out_alloc = vec![None; ports * config.vcs];
        // Local (ejection) outputs are modelled with unlimited credits;
        // inter-router outputs start with the full downstream buffer.
        let mut credits = vec![config.buffer_depth; ports * config.vcs];
        for port in link_ports..ports {
            for v in 0..config.vcs {
                credits[port * config.vcs + v] = usize::MAX / 2;
            }
        }
        Router {
            node,
            config,
            ports,
            link_ports,
            inputs,
            out_alloc,
            credits,
            rr_sa: vec![0; ports],
            sa_losers: Vec::with_capacity(ports * config.vcs),
            buffered: 0,
        }
    }

    /// Flat index of `(port, vc)` into the SoA state arrays.
    #[inline]
    pub(crate) fn idx(&self, port: usize, vc: usize) -> usize {
        port * self.config.vcs + vc
    }

    /// The node this router serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Ports on this router (the topology's radix).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Ports `0..link_ports()` face other routers.
    pub fn link_ports(&self) -> usize {
        self.link_ports
    }

    /// True for a local (NI) port of this router.
    pub fn is_local_port(&self, port: PortId) -> bool {
        port.0 >= self.link_ports
    }

    /// Immutable view of an input virtual channel.
    ///
    /// # Panics
    ///
    /// Panics if `port`/`vc` are out of range.
    pub fn vc(&self, port: usize, vc: usize) -> &Vc {
        &self.inputs[self.idx(port, vc)]
    }

    /// Free slots reported by the downstream router for `(out, vc)` — the
    /// `credit_in` signal of the confidence counter (Fig. 3).
    pub fn credit_in(&self, out: PortId, vc: usize) -> usize {
        self.credits[self.idx(out.0, vc)]
    }

    /// Occupied slots of a local input VC — the complement of the
    /// `credit_out` signal this router sends upstream.
    pub fn local_occupancy(&self, port: usize, vc: usize) -> usize {
        self.inputs[self.idx(port, vc)].buffer.len()
    }

    /// Switch-allocation losers of the last cycle (input port, vc).
    pub fn sa_losers(&self) -> &[(usize, usize)] {
        &self.sa_losers
    }

    /// Sets or clears the DISCO shadow lock on a VC.
    pub fn set_locked(&mut self, port: usize, vc: usize, locked: bool) {
        let idx = self.idx(port, vc);
        self.inputs[idx].locked = locked;
    }

    /// Accepts a flit arriving on an input port (from a link or the NI).
    /// Public for tests and harnesses that stage buffer contents
    /// directly; normal traffic goes through [`crate::Network::send`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — credits must prevent that; an
    /// overflow is a flow-control bug, not a runtime condition.
    pub fn accept(&mut self, port: usize, vc: usize, flit: Flit) {
        let idx = self.idx(port, vc);
        let depth = self.config.buffer_depth;
        let node = self.node;
        let buf = &mut self.inputs[idx].buffer;
        assert!(
            buf.len() < depth,
            "buffer overflow at {node} port {port} vc {vc}: flow control violated"
        );
        buf.push_back(flit);
        self.buffered += 1;
    }

    /// Pops the front flit of an input VC, keeping the occupancy counter
    /// in sync. The commit pass uses this for every departure.
    pub(crate) fn pop_front_flit(&mut self, port: usize, vc: usize) -> Option<Flit> {
        let idx = self.idx(port, vc);
        let flit = self.inputs[idx].buffer.pop_front();
        if flit.is_some() {
            self.buffered -= 1;
        }
        flit
    }

    /// Returns a credit to an output VC (downstream freed a slot).
    /// Public for the in-network-processing extension layer and tests.
    pub fn return_credit(&mut self, out: PortId, vc: usize) {
        let idx = self.idx(out.0, vc);
        self.credits[idx] += 1;
    }

    /// Consumes `n` credits of an output VC if available (used when an
    /// in-network decompression grows a downstream-bound... — growth
    /// happens in *this* router's input buffer, so this is called on the
    /// upstream router to account for the reduced free space).
    pub fn try_take_credits(&mut self, out: PortId, vc: usize, n: usize) -> bool {
        let idx = self.idx(out.0, vc);
        let c = &mut self.credits[idx];
        if *c >= n {
            *c -= n;
            true
        } else {
            false
        }
    }

    /// Free slots in a local input VC buffer.
    pub fn free_slots(&self, port: usize, vc: usize) -> usize {
        self.config.buffer_depth - self.inputs[self.idx(port, vc)].buffer.len()
    }

    /// Rebuilds one resident packet's flits in place (DISCO
    /// de/compression replacing shadow flits, §3.2 step 3). The packet may
    /// be the VC's front packet or one queued behind it; flits of other
    /// packets before and after its segment are preserved. `finalize`
    /// marks the last rebuilt flit as the tail.
    ///
    /// Returns the change in occupancy (positive = grew).
    ///
    /// # Panics
    ///
    /// Panics if the packet is not resident, if its flits are not
    /// contiguous, or if the new total exceeds the buffer depth.
    pub(crate) fn reshape_packet(
        &mut self,
        port: usize,
        vc: usize,
        packet: PacketId,
        new_len: usize,
        finalize: bool,
        now: u64,
    ) -> isize {
        let depth = self.config.buffer_depth;
        let idx = self.idx(port, vc);
        let vc_ref = &mut self.inputs[idx];
        let start = match vc_ref.buffer.iter().position(|f| f.packet == packet) {
            Some(s) => s,
            None => panic!("reshape requires {packet} resident at port {port} vc {vc}"),
        };
        let seg_len = vc_ref
            .buffer
            .iter()
            .skip(start)
            .take_while(|f| f.packet == packet)
            .count();
        assert_eq!(
            seg_len,
            vc_ref.resident_of(packet),
            "packet's flits must be contiguous"
        );
        let old_total = vc_ref.buffer.len();
        let before: Vec<Flit> = vc_ref.buffer.iter().take(start).copied().collect();
        let after: Vec<Flit> = vc_ref
            .buffer
            .iter()
            .skip(start + seg_len)
            .copied()
            .collect();
        assert!(
            new_len >= 1 && new_len + before.len() + after.len() <= depth,
            "reshape size out of range"
        );
        vc_ref.buffer.clear();
        vc_ref.buffer.extend(before);
        for i in 0..new_len {
            let kind = match (i, new_len, finalize) {
                (0, 1, true) => crate::packet::FlitKind::HeadTail,
                (0, _, _) => crate::packet::FlitKind::Head,
                (i, n, true) if i == n - 1 => crate::packet::FlitKind::Tail,
                _ => crate::packet::FlitKind::Body,
            };
            vc_ref.buffer.push_back(Flit {
                packet,
                kind,
                ready_at: now,
            });
        }
        vc_ref.buffer.extend(after);
        let delta = vc_ref.buffer.len() as isize - old_total as isize;
        self.buffered = (self.buffered as isize + delta) as usize;
        delta
    }

    /// Total flits buffered across all input VCs (for drain checks).
    /// Maintained incrementally; `check_invariants` cross-checks it
    /// against the actual buffer contents.
    pub(crate) fn total_buffered(&self) -> usize {
        self.buffered
    }

    /// Checks this router's internal legality: buffer bounds, DISCO lock
    /// state, credit bounds, and the input-state/output-allocation
    /// bijection. Always compiled; [`crate::Network::tick`] calls it every
    /// cycle when the `validate` feature is enabled, so the static CDG
    /// pass (`disco-verify`) and the simulator cross-check each other.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let depth = self.config.buffer_depth;
        let actual: usize = self.inputs.iter().map(|v| v.buffer.len()).sum();
        if actual != self.buffered {
            return Err(format!(
                "{}: occupancy counter {} desynchronized from buffers ({actual} flits)",
                self.node, self.buffered
            ));
        }
        for port in 0..self.ports {
            for v in 0..self.config.vcs {
                let vc = &self.inputs[self.idx(port, v)];
                if vc.buffer.len() > depth {
                    return Err(format!(
                        "{} port {port} vc {v}: occupancy {} exceeds buffer depth {depth}",
                        self.node,
                        vc.buffer.len()
                    ));
                }
                if vc.locked && vc.front_packet().is_none() {
                    return Err(format!(
                        "{} port {port} vc {v}: locked without a resident packet",
                        self.node
                    ));
                }
                if let VcState::Active { out, out_vc } = vc.state {
                    if self.out_alloc[self.idx(out.0, out_vc)] != Some((port, v)) {
                        return Err(format!(
                            "{} port {port} vc {v}: active on {out}/{out_vc}, but that \
                             output is allocated to {:?}",
                            self.node,
                            self.out_alloc[self.idx(out.0, out_vc)]
                        ));
                    }
                }
            }
        }
        for oi in 0..self.ports {
            let out = PortId(oi);
            for ov in 0..self.config.vcs {
                if let Some((port, v)) = self.out_alloc[self.idx(oi, ov)] {
                    match self.inputs[self.idx(port, v)].state {
                        VcState::Active { out: o, out_vc } if o == out && out_vc == ov => {}
                        other => {
                            return Err(format!(
                                "{} output {out}/{ov}: allocated to port {port} vc {v}, \
                                 whose state is {other:?}",
                                self.node
                            ));
                        }
                    }
                }
                if oi < self.link_ports && self.credits[self.idx(oi, ov)] > depth {
                    return Err(format!(
                        "{} output {out}/{ov}: {} credits exceed buffer depth {depth}",
                        self.node,
                        self.credits[self.idx(oi, ov)]
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for VcState {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        match self {
            VcState::Idle => w.put(&0u8),
            VcState::Routed(port) => {
                w.put(&1u8);
                w.put(port);
            }
            VcState::Active { out, out_vc } => {
                w.put(&2u8);
                w.put(out);
                w.put(out_vc);
            }
        }
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => VcState::Idle,
            1 => VcState::Routed(r.take()?),
            2 => VcState::Active {
                out: r.take()?,
                out_vc: r.take()?,
            },
            tag => return Err(disco_snapshot::malformed(format!("VcState tag {tag}"))),
        })
    }
}

impl Vc {
    fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.buffer);
        w.put(&self.state);
        w.put(&self.locked);
    }

    /// Overlays checkpointed contents, reusing the existing buffer
    /// allocation (the zero-alloc hot-loop contract keeps its
    /// construction-time capacity).
    fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let flits: std::collections::VecDeque<Flit> = r.take()?;
        self.buffer.clear();
        self.buffer.extend(flits);
        self.state = r.take()?;
        self.locked = r.take()?;
        Ok(())
    }
}

impl Router {
    /// Writes the router's mutable state. `node`, `config`, `ports`, and
    /// `link_ports` are rebuilt from the topology on restore.
    pub(crate) fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&(self.inputs.len() as u64));
        for vc in &self.inputs {
            vc.snap_state(w);
        }
        w.put(&self.out_alloc);
        w.put(&self.credits);
        w.put(&self.rr_sa);
        w.put(&self.sa_losers);
        w.put(&self.buffered);
    }

    /// Overlays state written by [`Router::snap_state`] onto a router
    /// freshly built over the same topology and config.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let n: u64 = r.take()?;
        if n as usize != self.inputs.len() {
            return Err(disco_snapshot::malformed(format!(
                "router {} has {} input VCs in snapshot, {} rebuilt",
                self.node.0,
                n,
                self.inputs.len()
            )));
        }
        for vc in &mut self.inputs {
            vc.restore_state(r)?;
        }
        let out_alloc: Vec<Option<(usize, usize)>> = r.take()?;
        let credits: Vec<usize> = r.take()?;
        if out_alloc.len() != self.out_alloc.len() || credits.len() != self.credits.len() {
            return Err(disco_snapshot::malformed(format!(
                "router {} output arrays sized {}/{} in snapshot, {}/{} rebuilt",
                self.node.0,
                out_alloc.len(),
                credits.len(),
                self.out_alloc.len(),
                self.credits.len()
            )));
        }
        self.out_alloc = out_alloc;
        self.credits = credits;
        self.rr_sa = r.take()?;
        self.sa_losers = r.take()?;
        self.buffered = r.take()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commit::commit_router_local;
    use crate::packet::{PacketClass, PacketStore, Payload};
    use crate::phase::{compute_router, ComputeScratch, Departure, RouterOutcome};
    use crate::topology::{Mesh, Topology, TopologySpec, EAST};

    /// The mesh local port index.
    const LOCAL: usize = 4;
    /// The mesh North port index.
    const NORTH_P: usize = 0;
    /// The mesh South port index.
    const SOUTH_P: usize = 1;

    fn mesh_router(node: NodeId, config: NocConfig) -> Router {
        Router::new(node, config, 5, 4)
    }

    /// Runs the pure compute with throwaway arenas (production code
    /// reuses them; tests don't care).
    fn compute(r: &Router, now: u64, store: &PacketStore, topo: &Topology) -> RouterOutcome {
        let mut scratch = ComputeScratch::default();
        let mut out = RouterOutcome::default();
        compute_router(
            r,
            now,
            store,
            topo,
            crate::faults::FaultGate::inert(),
            &mut scratch,
            &mut out,
        );
        out
    }

    /// One router-local cycle: pure compute, then commit, as the network
    /// kernel does — minus the cross-router effects.
    fn step(r: &mut Router, now: u64, store: &PacketStore, topo: &Topology) -> Vec<Departure> {
        let outcome = compute(r, now, store, topo);
        commit_router_local(r, &outcome);
        outcome.departures
    }

    fn store_with_packet(dst: NodeId, class: PacketClass) -> (PacketStore, PacketId) {
        let mut store = PacketStore::new();
        let id = store.create(NodeId(0), dst, class, Payload::None, false, 0, 0);
        (store, id)
    }

    #[test]
    fn compute_assigns_route_and_vc() {
        let mesh = Mesh::new(4, 4).build();
        let config = NocConfig::default();
        let mut r = mesh_router(NodeId(0), config);
        let (store, id) = store_with_packet(NodeId(3), PacketClass::Request);
        r.accept(LOCAL, 0, crate::packet::flits_for(id, 1, 0)[0]);
        let outcome = compute(&r, 0, &store, &mesh);
        assert_eq!(outcome.routes, vec![(LOCAL, 0, EAST)]);
        assert_eq!(outcome.grants, vec![(LOCAL, 0, EAST, 0)]);
    }

    #[test]
    fn compute_is_pure_until_commit() {
        let mesh = Mesh::new(4, 4).build();
        let mut r = mesh_router(NodeId(0), NocConfig::default());
        let (store, id) = store_with_packet(NodeId(3), PacketClass::Request);
        r.accept(LOCAL, 0, crate::packet::flits_for(id, 1, 0)[0]);
        let before = format!("{r:?}");
        let outcome = compute(&r, 0, &store, &mesh);
        assert_eq!(format!("{r:?}"), before, "compute must not mutate");
        commit_router_local(&mut r, &outcome);
        assert_ne!(format!("{r:?}"), before, "commit applies the outcome");
    }

    #[test]
    fn sa_moves_single_flit_packet() {
        let mesh = Mesh::new(4, 4).build();
        let mut r = mesh_router(NodeId(0), NocConfig::default());
        let (store, id) = store_with_packet(NodeId(1), PacketClass::Request);
        r.accept(LOCAL, 0, crate::packet::flits_for(id, 1, 0)[0]);
        let deps = step(&mut r, 0, &store, &mesh);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].out, EAST);
        // Tail departed: VC released.
        assert_eq!(r.vc(LOCAL, 0).state, VcState::Idle);
        assert_eq!(r.credit_in(EAST, 0), NocConfig::default().buffer_depth - 1);
    }

    #[test]
    fn sa_records_losers() {
        let mesh = Mesh::new(4, 4).build();
        let mut r = mesh_router(NodeId(0), NocConfig::default());
        let mut store = PacketStore::new();
        // Two packets from different ports contending for East.
        let a = store.create(
            NodeId(0),
            NodeId(3),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            0,
        );
        let b = store.create(
            NodeId(0),
            NodeId(3),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            1,
        );
        r.accept(LOCAL, 0, crate::packet::flits_for(a, 1, 0)[0]);
        r.accept(NORTH_P, 0, crate::packet::flits_for(b, 1, 0)[0]);
        // Only one can own the East VC; the other stays Routed (VA loser).
        let deps = step(&mut r, 0, &store, &mesh);
        assert_eq!(deps.len(), 1);
        // Next cycle the VA loser acquires the VC and departs.
        let deps2 = step(&mut r, 1, &store, &mesh);
        assert_eq!(deps2.len(), 1);
        assert_ne!(deps[0].flit.packet, deps2[0].flit.packet);
    }

    #[test]
    fn coherence_yields_to_critical() {
        let mesh = Mesh::new(4, 4).build();
        let mut r = mesh_router(NodeId(0), NocConfig::default());
        let mut store = PacketStore::new();
        let coh = store.create(
            NodeId(0),
            NodeId(3),
            PacketClass::Coherence,
            Payload::None,
            false,
            0,
            0,
        );
        let req = store.create(
            NodeId(0),
            NodeId(3),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            1,
        );
        // Same class VC (0) in different ports, both to East.
        r.accept(NORTH_P, 0, crate::packet::flits_for(coh, 1, 0)[0]);
        r.accept(SOUTH_P, 0, crate::packet::flits_for(req, 1, 0)[0]);
        // Whichever got the out VC in VA wins; force the contest at SA by
        // checking that when both are active... only one can be Active on
        // out_vc 0, so the loser is a VA loser. The request should not be
        // starved across two cycles.
        let first = step(&mut r, 0, &store, &mesh);
        let second = step(&mut r, 1, &store, &mesh);
        let order: Vec<PacketId> = first
            .iter()
            .chain(second.iter())
            .map(|d| d.flit.packet)
            .collect();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn locked_vc_is_skipped() {
        let mesh = Mesh::new(4, 4).build();
        let mut r = mesh_router(NodeId(0), NocConfig::default());
        let (store, id) = store_with_packet(NodeId(1), PacketClass::Request);
        r.accept(LOCAL, 0, crate::packet::flits_for(id, 1, 0)[0]);
        r.set_locked(LOCAL, 0, true);
        // RC/VA still run for a locked VC; only SA skips it.
        assert!(step(&mut r, 0, &store, &mesh).is_empty());
        r.set_locked(LOCAL, 0, false);
        assert_eq!(step(&mut r, 1, &store, &mesh).len(), 1);
    }

    #[test]
    fn credits_gate_departure() {
        let mesh = Mesh::new(4, 4).build();
        let config = NocConfig {
            buffer_depth: 1,
            ..NocConfig::default()
        };
        let mut r = mesh_router(NodeId(0), config);
        let mut store = PacketStore::new();
        let a = store.create(
            NodeId(0),
            NodeId(2),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            0,
        );
        let b = store.create(
            NodeId(0),
            NodeId(2),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            1,
        );
        r.accept(LOCAL, 0, crate::packet::flits_for(a, 1, 0)[0]);
        assert_eq!(step(&mut r, 0, &store, &mesh).len(), 1); // consumes the only credit
        r.accept(LOCAL, 0, crate::packet::flits_for(b, 1, 0)[0]);
        assert!(step(&mut r, 1, &store, &mesh).is_empty(), "no credit left");
        assert_eq!(r.sa_losers(), &[(LOCAL, 0)]);
        r.return_credit(EAST, 0);
        assert_eq!(step(&mut r, 2, &store, &mesh).len(), 1);
    }

    #[test]
    fn reshape_shrinks_and_reports_delta() {
        let mut r = mesh_router(NodeId(0), NocConfig::default());
        let mut store = PacketStore::new();
        let line = disco_compress::CacheLine::zeroed();
        let id = store.create(
            NodeId(0),
            NodeId(3),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
            0,
        );
        for f in crate::packet::flits_for(id, 8, 0) {
            r.accept(NORTH_P, 1, f);
        }
        let delta = r.reshape_packet(NORTH_P, 1, id, 2, true, 5);
        assert_eq!(delta, -6);
        let vc = r.vc(NORTH_P, 1);
        assert_eq!(vc.occupancy(), 2);
        assert!(vc.buffer.back().unwrap().kind.is_tail());
        assert!(vc.buffer.front().unwrap().kind.is_head());
    }

    #[test]
    fn vc_groups_allocate_within_class() {
        // With 4 VCs, two concurrent response packets toward the same
        // output must take the two VCs of the response group (2 and 3),
        // never the control group.
        let mesh = Mesh::new(3, 1).build();
        let config = NocConfig {
            vcs: 4,
            ..NocConfig::default()
        };
        let mut r = mesh_router(NodeId(0), config);
        let mut store = PacketStore::new();
        let line = disco_compress::CacheLine::zeroed();
        let a = store.create(
            NodeId(0),
            NodeId(2),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
            0,
        );
        let b = store.create(
            NodeId(0),
            NodeId(2),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
            1,
        );
        // Two different input VCs of the response group hold the heads.
        r.accept(LOCAL, 2, crate::packet::flits_for(a, 8, 0)[0]);
        r.accept(NORTH_P, 3, crate::packet::flits_for(b, 8, 0)[0]);
        let _ = step(&mut r, 0, &store, &mesh);
        // The SA winner's head departed but neither packet is done, so
        // both VCs stay Active on their granted output VC.
        let states: Vec<_> = [(LOCAL, 2), (NORTH_P, 3)]
            .into_iter()
            .map(|(p, v)| r.vc(p, v).state)
            .collect();
        let mut out_vcs = Vec::new();
        for st in states {
            match st {
                VcState::Active { out, out_vc } => {
                    assert_eq!(out, EAST);
                    assert!(out_vc >= 2, "responses stay in the upper VC group");
                    out_vcs.push(out_vc);
                }
                other => panic!("expected Active, got {other:?}"),
            }
        }
        out_vcs.sort_unstable();
        assert_eq!(out_vcs, vec![2, 3], "both group VCs get used");
    }

    #[test]
    fn control_and_data_never_share_an_output_vc() {
        let mesh = Mesh::new(2, 1).build();
        let config = NocConfig {
            vcs: 4,
            ..NocConfig::default()
        };
        let mut r = mesh_router(NodeId(0), config);
        let mut store = PacketStore::new();
        let req = store.create(
            NodeId(0),
            NodeId(1),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            0,
        );
        let resp = store.create(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(disco_compress::CacheLine::zeroed()),
            true,
            0,
            1,
        );
        r.accept(LOCAL, 0, crate::packet::flits_for(req, 1, 0)[0]);
        r.accept(LOCAL, 2, crate::packet::flits_for(resp, 8, 0)[0]);
        let outcome = compute(&r, 0, &store, &mesh);
        let grant_of = |port: usize, v: usize| {
            outcome
                .grants
                .iter()
                .find(|g| g.0 == port && g.1 == v)
                .map(|g| g.3)
        };
        match grant_of(LOCAL, 0) {
            Some(out_vc) => assert!(out_vc < 2),
            None => panic!("request got no VC grant"),
        }
        match grant_of(LOCAL, 2) {
            Some(out_vc) => assert!(out_vc >= 2),
            None => panic!("response got no VC grant"),
        }
    }

    #[test]
    fn ring_router_has_three_ports() {
        let r = Router::new(NodeId(0), NocConfig::default(), 3, 2);
        assert_eq!(r.ports(), 3);
        assert_eq!(r.link_ports(), 2);
        assert!(r.is_local_port(PortId(2)));
        assert!(!r.is_local_port(PortId(1)));
        // Local ejection credits are unbounded; link credits start at
        // the downstream buffer depth.
        assert!(r.credit_in(PortId(2), 0) > NocConfig::default().buffer_depth);
        assert_eq!(r.credit_in(PortId(0), 0), NocConfig::default().buffer_depth);
        r.check_invariants().expect("fresh ring router is legal");
    }

    #[test]
    #[should_panic(expected = "flow control violated")]
    fn overflow_panics() {
        let config = NocConfig {
            buffer_depth: 2,
            ..NocConfig::default()
        };
        let mut r = mesh_router(NodeId(0), config);
        let mut store = PacketStore::new();
        let id = store.create(
            NodeId(0),
            NodeId(1),
            PacketClass::Request,
            Payload::None,
            false,
            0,
            0,
        );
        for _ in 0..3 {
            r.accept(0, 0, crate::packet::flits_for(id, 1, 0)[0]);
        }
    }
}
