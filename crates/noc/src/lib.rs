#![warn(missing_docs)]

//! Cycle-stepped Network-on-Chip simulator for the DISCO reproduction.
//!
//! Models the substrate the paper evaluates on (Booksim-class fidelity,
//! Table 2 parameters): virtual-channel routers with a configurable
//! pipeline, per-class virtual networks, credit-based backpressure,
//! and wormhole / virtual cut-through / store-and-forward flow control
//! (§3.3-A). Topology is **data, not code**: a [`Topology`] value of
//! per-router port tables describes the graph, and the paper's `k×k`
//! mesh of 5-port routers is just one [`topology::TopologySpec`] among
//! [`topology::Ring`], [`topology::HierarchicalRing`],
//! [`topology::Torus`], and [`topology::ConcentratedMesh`].
//!
//! The DISCO router extensions (compressor engine, arbitrator, shadow
//! packets) live in `disco-core` and drive this crate through a dedicated
//! extension API: [`Router`] exposes SA losers, credit counters, and
//! VC locking; [`Network::reshape_resident`] swaps shadow flits for
//! de/compressed ones with credit-correct buffer accounting.
//!
//! # Example
//!
//! ```
//! use disco_noc::{Network, NocConfig};
//! use disco_noc::packet::{PacketClass, Payload};
//! use disco_noc::topology::{Mesh, NodeId};
//!
//! let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
//! net.send(NodeId(0), NodeId(15), PacketClass::Request, Payload::None, false, 0);
//! for _ in 0..100 {
//!     net.tick();
//! }
//! assert_eq!(net.take_delivered(NodeId(15)).len(), 1);
//! ```

mod commit;
pub mod config;
pub(crate) mod faults;
pub mod health;
pub mod network;
pub mod packet;
mod phase;
#[cfg(feature = "parallel")]
pub(crate) mod pool;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use config::{FlowControl, NocConfig, SchedulingPolicy};
#[cfg(feature = "faults")]
pub use disco_faults::{FaultKind, FaultPlan, FaultStats};
pub use health::{StallInfo, StallReason};
pub use network::{Network, MAX_PACKET_FLITS};
pub use packet::{Flit, FlitKind, Packet, PacketClass, PacketId, PacketStore, Payload, FLIT_BYTES};
pub use router::{Router, Vc};
pub use routing::RoutingAlgorithm;
pub use stats::NetworkStats;
pub use topology::{
    ConcentratedMesh, HierarchicalRing, Mesh, NodeId, PortId, Ring, Topology, TopologyChoice,
    TopologyKind, TopologySpec, Torus,
};
pub use traffic::{TrafficDriver, TrafficPattern};
