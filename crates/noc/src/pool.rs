//! Persistent worker pool for the parallel compute phase.
//!
//! The previous parallel path spawned fresh scoped threads every cycle
//! (`std::thread::scope` in `network.rs`), so each tick paid thread
//! creation, stack setup, and teardown — tens of microseconds against a
//! per-cycle compute of a few microseconds on small meshes. That made
//! `parallel` a *pessimization* (BENCH_pr3: speedup 0.952). This pool
//! spawns its workers **once** when the [`crate::Network`] is built and
//! parks them between cycles; a tick hands work over with one
//! mutex/condvar rendezvous instead of N thread spawns.
//!
//! # Epoch/barrier protocol
//!
//! Shared state holds an `epoch` counter and an optional type-erased
//! task pointer. [`WorkerPool::run`] publishes the task, bumps the
//! epoch, and wakes the workers; each worker runs the task with its own
//! index (shards are pinned to workers, so shard *k*'s arena stays in
//! worker *k*'s cache across cycles), then decrements `remaining`. The
//! caller's thread runs shard 0 itself — the pool only ever parks
//! `shards - 1` threads — and then blocks on the `done` condvar until
//! `remaining` hits zero. A worker re-runs only when the epoch moves
//! again, so a slow wake-up cannot double-execute a cycle.
//!
//! # Why the one `unsafe` is sound
//!
//! The task is borrowed from the caller's stack and smuggled to the
//! workers as a raw pointer ([`TaskRef`]), erasing the lifetime — the
//! same move `std::thread::scope` performs internally. The borrow is
//! protected by the barrier: `run` does not return (normally *or* by
//! unwinding — the caller-side shard runs under `catch_unwind`) until
//! every worker has decremented `remaining` for this epoch, and workers
//! only dereference the pointer between observing the epoch and that
//! decrement. All accesses are ordered by the mutex, so Miri and
//! ThreadSanitizer see the happens-before edges (CI runs both against
//! this pool).
#![allow(unsafe_code)]

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lifetime-erased borrow of the per-cycle task. The `'static` is a
/// lie told by [`WorkerPool::run`], which also owns the proof that the
/// pointee outlives every use (see module docs); construction is
/// confined to that method.
type TaskRef = &'static (dyn Fn(usize) + Sync);

/// Rendezvous state, guarded by one mutex.
struct State {
    /// Bumped once per `run`; a worker executes at most once per epoch.
    epoch: u64,
    /// The current cycle's task; `None` outside a `run`.
    task: Option<TaskRef>,
    /// Workers still running the current epoch.
    remaining: usize,
    /// A worker's task panicked this epoch (re-raised by `run`).
    panicked: bool,
    /// Set once by `Drop`; workers exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new epoch or shutdown.
    start: Condvar,
    /// Signals the caller: `remaining` reached zero.
    done: Condvar,
}

/// Locks the state, treating poison as benign: the state is plain data
/// and every transition below is panic-free, so a poisoned lock only
/// means some *task* panicked — which `panicked` already records.
fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    match shared.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Condvar wait with the same poison policy as [`lock`].
fn wait<'a>(cv: &Condvar, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A fixed set of parked worker threads executing one task per epoch.
/// Worker `w` always receives index `w + 1`; index 0 belongs to the
/// thread calling [`WorkerPool::run`].
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` parked threads. `WorkerPool::new(0)` is valid
    /// and degenerates to running everything on the caller's thread.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("disco-shard-{}", w + 1))
                    .spawn(move || worker_loop(&shared, w + 1));
                match spawned {
                    Ok(handle) => handle,
                    Err(e) => panic!("failed to spawn compute worker {}: {e}", w + 1),
                }
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of parked worker threads (excludes the caller's thread).
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `task(i)` for every index in `0..=workers()`: index 0 on the
    /// calling thread, the rest on the parked workers, all concurrently.
    /// Returns only after every index has completed. If any invocation
    /// panics, the panic is re-raised here — after the barrier, so the
    /// task borrow never escapes.
    pub(crate) fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            task(0);
            return;
        }
        // SAFETY: the only lifetime extension in the pool. The barrier
        // below keeps this function from returning — normally or by
        // unwinding — until every worker has finished with the borrow,
        // so the pointee strictly outlives all uses of the erased
        // reference (which never leaves `Shared.state`).
        let erased: TaskRef =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), TaskRef>(task) };
        {
            let mut st = lock(&self.shared);
            debug_assert!(st.task.is_none(), "run() is not reentrant");
            st.task = Some(erased);
            st.remaining = self.handles.len();
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.start.notify_all();
        }
        // Shard 0 runs here, overlapping the workers. Catch a panic so
        // the barrier below still executes and the borrow stays sound.
        let local = catch_unwind(AssertUnwindSafe(|| task(0)));
        let worker_panicked = {
            let mut st = lock(&self.shared);
            while st.remaining != 0 {
                st = wait(&self.shared.done, st);
            }
            st.task = None;
            std::mem::replace(&mut st.panicked, false)
        };
        if let Err(payload) = local {
            resume_unwind(payload);
        }
        if worker_panicked {
            // Compute is pure; a worker panic is a simulator bug.
            panic!("compute-phase worker panicked");
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a task already tripped the
            // `panicked` flag or aborted; nothing useful to add here.
            let _ = handle.join();
        }
    }
}

/// Parked worker: wait for a fresh epoch, run the task with this
/// worker's pinned index, decrement the barrier, repeat.
fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(task) = st.task {
                        seen = st.epoch;
                        break task;
                    }
                }
                st = wait(&shared.start, st);
            }
        };
        // `run` holds the caller blocked until this worker's decrement
        // below, so the pointee (a stack borrow in `run`'s caller) is
        // alive for the whole call despite the erased lifetime.
        let result = catch_unwind(AssertUnwindSafe(|| task(index)));
        let mut st = lock(shared);
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        for _ in 0..100 {
            let hits = [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ];
            pool.run(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
            }
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = AtomicUsize::new(0);
        pool.run(&|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn results_visible_after_run_returns() {
        // The barrier must publish worker writes to the caller.
        let pool = WorkerPool::new(2);
        let slots: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        for round in 1..=50u64 {
            pool.run(&|i| {
                let mut slot = match slots[i].lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                *slot = round * (i as u64 + 1);
            });
            for (i, slot) in slots.iter().enumerate() {
                let got = match slot.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                assert_eq!(*got, round * (i as u64 + 1));
            }
        }
    }

    #[test]
    fn worker_panic_is_reraised_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must propagate");
        // The pool must still be usable for the next epoch.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panic_still_waits_for_workers() {
        let pool = WorkerPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|i| {
                if i == 0 {
                    panic!("local boom");
                }
            });
        }));
        assert!(result.is_err());
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
