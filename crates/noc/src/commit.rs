//! The **commit** half of the cycle kernel: the only place router state
//! is mutated during a tick.
//!
//! [`commit_cycle`] applies every router's [`RouterOutcome`] in fixed
//! node order — local allocation state first, then the cross-router
//! effects of each departure (upstream credit return, link delivery,
//! ejection) and the stat delta. Because the outcomes were computed
//! from the cycle-start snapshot and the pass always walks nodes
//! `0..n`, the committed state is identical no matter how the compute
//! phase was scheduled, which is what keeps serial and `parallel`
//! builds byte-exact.
//!
//! The `disco-verify` commit-confinement lint pins this property down
//! statically: outside this module and `router.rs` itself, no code may
//! write a router's internal fields.

use crate::network::Network;
use crate::phase::RouterOutcome;
use crate::router::{Router, VcState};
use crate::topology::{Direction, NodeId};

/// Applies one router's own action lists: RC/VA state transitions, the
/// winners' buffer pops and credit decrements, round-robin pointers,
/// and the loser list the DISCO layer reads.
pub(crate) fn commit_router_local(router: &mut Router, outcome: &RouterOutcome) {
    for &(port, v, dir) in &outcome.routes {
        router.inputs[port][v].state = VcState::Routed(dir);
    }
    for &(port, v, dir, out_vc) in &outcome.grants {
        router.out_alloc[dir.index()][out_vc] = Some((port, v));
        router.inputs[port][v].state = VcState::Active { out: dir, out_vc };
    }
    for dep in &outcome.departures {
        let popped = router.inputs[dep.in_port][dep.in_vc].buffer.pop_front();
        assert!(
            popped.is_some_and(|f| f.packet == dep.flit.packet),
            "commit desynchronized from compute: departing flit is not the buffer front"
        );
        if dep.out != Direction::Local {
            router.credits[dep.out.index()][dep.out_vc] -= 1;
        }
        if dep.flit.kind.is_tail() {
            router.out_alloc[dep.out.index()][dep.out_vc] = None;
            router.inputs[dep.in_port][dep.in_vc].state = VcState::Idle;
        }
    }
    router.rr_sa = outcome.rr_sa;
    router.sa_losers.clear();
    router.sa_losers.extend_from_slice(&outcome.sa_losers);
}

/// Applies every router's outcome in node order: local state, then the
/// cross-router effects (credit returns upstream, link deliveries with
/// the pipeline delay stamped in, ejections) and the stat merge.
pub(crate) fn commit_cycle(net: &mut Network, outcomes: &[RouterOutcome]) {
    debug_assert_eq!(outcomes.len(), net.routers.len());
    let now = net.now;
    for (i, outcome) in outcomes.iter().enumerate() {
        commit_router_local(&mut net.routers[i], outcome);
        // Cycle-stamp this router's compute-phase events here, in node
        // order: the trace byte-stream is then independent of how the
        // compute phase was scheduled across shards.
        #[cfg(feature = "trace")]
        net.tracer.record_all(&outcome.events);
        for dep in &outcome.departures {
            // Return a credit upstream for the freed slot.
            if dep.in_port != Direction::Local.index() {
                let from_dir = Direction::ALL[dep.in_port];
                if let Some(up) = net.mesh.neighbor(NodeId(i), from_dir) {
                    net.routers[up.0].return_credit(from_dir.opposite(), dep.in_vc);
                }
            }
            // Fault hook: an injected drop (or a failed ejection-time
            // integrity check) eats the flit here — after the upstream
            // credit return, instead of link delivery or ejection.
            #[cfg(feature = "faults")]
            if crate::faults::intercept_departure(net, i, dep) {
                continue;
            }
            if dep.out == Direction::Local {
                if dep.flit.kind.is_tail() {
                    net.delivered[i].push(dep.flit.packet);
                    disco_trace::emit!(
                        net.tracer,
                        disco_trace::Event::Eject {
                            packet: dep.flit.packet.0,
                            node: i as u16,
                        }
                    );
                }
            } else {
                let Some(next) = net.mesh.neighbor(NodeId(i), dep.out) else {
                    // All supported routing functions are minimal and
                    // stay inside the mesh; dropping the flit here beats
                    // corrupting a neighbour that doesn't exist. The
                    // compute phase counted it in routing_violations.
                    debug_assert!(false, "node {i} routed {:?} off the mesh edge", dep.out);
                    continue;
                };
                let mut flit = dep.flit;
                flit.ready_at = now + net.config.pipeline_stages;
                net.routers[next.0].accept(dep.out.opposite().index(), dep.out_vc, flit);
            }
        }
        net.stats.accumulate(&outcome.stats);
        #[cfg(feature = "faults")]
        if let Some(ctx) = net.faults.as_mut() {
            ctx.stats.port_stall_cycles += outcome.fault_port_stalls;
        }
    }
}
