//! The **commit** half of the cycle kernel: the only place router state
//! is mutated during a tick.
//!
//! [`commit_cycle`] applies every router's [`RouterOutcome`] in fixed
//! node order — local allocation state first, then the cross-router
//! effects of each departure (upstream credit return, link delivery,
//! ejection) and the stat delta. Outcomes live in per-shard slots, but
//! shards own *contiguous* node ranges, so walking the slots in shard
//! order with a running node counter **is** node order `0..n`. Because
//! the outcomes were computed from the cycle-start snapshot, the
//! committed state is identical no matter how the compute phase was
//! scheduled, which is what keeps serial and `parallel` builds
//! byte-exact.
//!
//! The `disco-verify` commit-confinement lint pins this property down
//! statically: outside this module and `router.rs` itself, no code may
//! write a router's internal fields.

use crate::network::{Network, ShardSlot};
use crate::phase::RouterOutcome;
use crate::router::{Router, VcState};
use crate::topology::{NodeId, PortId};
use std::sync::Mutex;

/// Applies one router's own action lists: RC/VA state transitions, the
/// winners' buffer pops and credit decrements, round-robin pointers,
/// and the loser list the DISCO layer reads.
pub(crate) fn commit_router_local(router: &mut Router, outcome: &RouterOutcome) {
    let vcs = router.config.vcs;
    let flat = |port: usize, v: usize| port * vcs + v;
    for &(port, v, dir) in &outcome.routes {
        router.inputs[flat(port, v)].state = VcState::Routed(dir);
    }
    for &(port, v, dir, out_vc) in &outcome.grants {
        router.out_alloc[flat(dir.0, out_vc)] = Some((port, v));
        router.inputs[flat(port, v)].state = VcState::Active { out: dir, out_vc };
    }
    for dep in &outcome.departures {
        let popped = router.pop_front_flit(dep.in_port, dep.in_vc);
        assert!(
            popped.is_some_and(|f| f.packet == dep.flit.packet),
            "commit desynchronized from compute: departing flit is not the buffer front"
        );
        if dep.out.0 < router.link_ports {
            router.credits[flat(dep.out.0, dep.out_vc)] -= 1;
        }
        if dep.flit.kind.is_tail() {
            router.out_alloc[flat(dep.out.0, dep.out_vc)] = None;
            router.inputs[flat(dep.in_port, dep.in_vc)].state = VcState::Idle;
        }
    }
    router.rr_sa.clone_from(&outcome.rr_sa);
    router.sa_losers.clear();
    router.sa_losers.extend_from_slice(&outcome.sa_losers);
}

/// Applies one node's outcome: local state, then the cross-router
/// effects (credit returns upstream, link deliveries with the pipeline
/// delay stamped in, ejections) and the stat merge.
fn commit_node(net: &mut Network, i: usize, outcome: &RouterOutcome) {
    let now = net.now;
    commit_router_local(&mut net.routers[i], outcome);
    // Cycle-stamp this router's compute-phase events here, in node
    // order: the trace byte-stream is then independent of how the
    // compute phase was scheduled across shards.
    #[cfg(feature = "trace")]
    net.tracer.record_all(&outcome.events);
    for dep in &outcome.departures {
        // Return a credit upstream for the freed slot: the topology's
        // input-source table names the upstream router and its output
        // port directly, for any radix and even unidirectional links.
        if dep.in_port < net.routers[i].link_ports {
            if let Some((up, up_out)) = net.topology.in_source(NodeId(i), PortId(dep.in_port)) {
                net.routers[up.0].return_credit(up_out, dep.in_vc);
            }
        }
        // Fault hook: an injected drop (or a failed ejection-time
        // integrity check) eats the flit here — after the upstream
        // credit return, instead of link delivery or ejection.
        #[cfg(feature = "faults")]
        if crate::faults::intercept_departure(net, i, dep) {
            continue;
        }
        if net.topology.is_local(dep.out) {
            if dep.flit.kind.is_tail() {
                let tile = net
                    .topology
                    .tile_at(NodeId(i), dep.out)
                    .unwrap_or(NodeId(i));
                net.delivered[tile.0].push(dep.flit.packet);
                disco_trace::emit!(
                    net.tracer,
                    disco_trace::Event::Eject {
                        packet: dep.flit.packet.0,
                        node: tile.0 as u16,
                    }
                );
            }
        } else {
            let Some((next, next_in)) = net.topology.out_link(NodeId(i), dep.out) else {
                // All supported routing functions are minimal and stay
                // on live links; dropping the flit here beats
                // corrupting a router that isn't connected. The
                // compute phase counted it in routing_violations.
                debug_assert!(false, "node {i} routed {:?} onto a dead port", dep.out);
                continue;
            };
            let mut flit = dep.flit;
            flit.ready_at = now + net.config.pipeline_stages;
            net.routers[next.0].accept(next_in.0, dep.out_vc, flit);
        }
    }
    net.stats.accumulate(&outcome.stats);
    #[cfg(feature = "faults")]
    if let Some(ctx) = net.faults.as_mut() {
        ctx.stats.port_stall_cycles += outcome.fault_port_stalls;
    }
}

/// Applies every shard slot's outcomes in shard order. Shard `s` owns
/// the contiguous node range [`Network::shard_span`]`(s)`, so the
/// running counter visits nodes exactly in order `0..n` — the same
/// schedule the serial path produces.
pub(crate) fn commit_cycle(net: &mut Network, slots: &mut [Mutex<ShardSlot>]) {
    let mut node = 0;
    for slot in slots.iter_mut() {
        // The compute phase is over and we hold `&mut`: the lock cannot
        // be contended, and a poisoned slot only means a compute worker
        // panicked *after* the pool already re-raised the panic.
        let slot = match slot.get_mut() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        for outcome in &slot.outcomes {
            commit_node(net, node, outcome);
            node += 1;
        }
    }
    debug_assert_eq!(
        node,
        net.routers.len(),
        "shard slots must tile the node range"
    );
}
