//! Cache hierarchy parameters (Table 2 defaults).

use crate::replacement::Replacement;

/// L1 data cache parameters (Table 2: 32 KB, 4-way, 64 B lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// Victim selection policy.
    pub replacement: Replacement,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config {
            capacity_bytes: 32 * 1024,
            assoc: 4,
            replacement: Replacement::Lru,
        }
    }
}

impl L1Config {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / 64 / self.assoc
    }
}

/// One NUCA L2 bank (Table 2: 4 MB shared over 16 banks ⇒ 256 KB/bank,
/// 8-way, 64 B lines, LRU, 4-cycle hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Capacity of this bank's data array in bytes.
    pub capacity_bytes: usize,
    /// Baseline associativity (data-array ways).
    pub assoc: usize,
    /// Hit latency in cycles, NoC delay excluded.
    pub hit_latency: u64,
    /// When `true`, the bank stores lines compressed in a segmented data
    /// array: the tag array holds `2 × assoc` tags per set and lines
    /// occupy 8-byte segments, so a set can hold up to twice as many
    /// lines when they compress well.
    pub compressed: bool,
    /// Victim selection policy (Table 2: LRU).
    pub replacement: Replacement,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            capacity_bytes: 256 * 1024,
            assoc: 8,
            hit_latency: 4,
            compressed: false,
            replacement: Replacement::Lru,
        }
    }
}

impl BankConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / 64 / self.assoc
    }

    /// Tag slots per set (doubled in compressed mode).
    pub fn tag_slots(&self) -> usize {
        if self.compressed {
            2 * self.assoc
        } else {
            self.assoc
        }
    }

    /// Data segments (8 B) per set.
    pub fn segments_per_set(&self) -> usize {
        self.assoc * 64 / SEGMENT_BYTES
    }
}

/// Segment granularity of the compressed data array.
pub const SEGMENT_BYTES: usize = 8;

/// Main memory (Table 2: 4 GB DRAM, 1 rank, 1 channel, 8 banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// DRAM banks.
    pub banks: usize,
    /// Row-miss latency (precharge + activate + CAS + transfer) in core
    /// cycles.
    pub access_latency: u64,
    /// Row-hit latency (CAS + transfer only).
    pub row_hit_latency: u64,
    /// 64 B lines per DRAM row (8 KB rows).
    pub row_lines: usize,
    /// Extra serialization between back-to-back accesses to one bank.
    pub bank_busy: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            access_latency: 160,
            row_hit_latency: 40,
            row_lines: 128,
            bank_busy: 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometry() {
        let l1 = L1Config::default();
        assert_eq!(l1.sets(), 128); // 32KB / 64B / 4

        let bank = BankConfig::default();
        assert_eq!(bank.sets(), 512); // 256KB / 64B / 8
        assert_eq!(bank.tag_slots(), 8);
        assert_eq!(bank.segments_per_set(), 64);

        let c = BankConfig {
            compressed: true,
            ..bank
        };
        assert_eq!(c.tag_slots(), 16);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(L1Config {
    capacity_bytes,
    assoc,
    replacement,
});

disco_snapshot::snap_fields!(BankConfig {
    capacity_bytes,
    assoc,
    hit_latency,
    compressed,
    replacement,
});

disco_snapshot::snap_fields!(DramConfig {
    banks,
    access_latency,
    row_hit_latency,
    row_lines,
    bank_busy,
});
