//! Directory-based MOESI coherence (Table 2) at the home L2 bank.
//!
//! The directory tracks, per line, which cores hold copies and which (if
//! any) owns a dirty copy. It is a *protocol engine*: state transitions
//! return lists of [`CohAction`]s that the system layer converts into NoC
//! packets (request forwards, invalidations, data responses), which is
//! what generates the coherence traffic class of §3.3-C.

use crate::addr::LineAddr;
use std::collections::HashMap;

/// A core identifier (tile index).
pub type CoreId = usize;

/// Directory knowledge about one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No core holds the line.
    Uncached,
    /// One or more cores hold clean copies (S/E in MOESI; we do not
    /// distinguish E since our traces always fetch through the home bank).
    Shared(Vec<CoreId>),
    /// `owner` holds a dirty copy and may be sharing it (O/M): `sharers`
    /// excludes the owner.
    Owned {
        /// Core with the dirty copy.
        owner: CoreId,
        /// Other cores with clean copies.
        sharers: Vec<CoreId>,
    },
}

/// The abstract directory states — [`DirState`] with the sharer lists
/// erased. Static analysis (`disco-verify`) enumerates protocol
/// behaviour over this finite domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// No core holds the line.
    Uncached,
    /// Clean copies only.
    Shared,
    /// A dirty owner exists.
    Owned,
}

impl StateKind {
    /// Every abstract state.
    pub const ALL: [StateKind; 3] = [StateKind::Uncached, StateKind::Shared, StateKind::Owned];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            StateKind::Uncached => "Uncached",
            StateKind::Shared => "Shared",
            StateKind::Owned => "Owned",
        }
    }
}

impl DirState {
    /// The abstract state this concrete state belongs to.
    pub fn kind(&self) -> StateKind {
        match self {
            DirState::Uncached => StateKind::Uncached,
            DirState::Shared(_) => StateKind::Shared,
            DirState::Owned { .. } => StateKind::Owned,
        }
    }
}

/// Actions the system layer must perform to honour a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CohAction {
    /// The home bank supplies the data to `to`.
    DataFromBank {
        /// Requesting core.
        to: CoreId,
    },
    /// Forward the request to the dirty owner, who supplies the data
    /// directly to `to` (cache-to-cache transfer).
    ForwardToOwner {
        /// Current owner.
        owner: CoreId,
        /// Requesting core.
        to: CoreId,
    },
    /// Invalidate the copy at `core`; the core acknowledges, and if its
    /// copy was dirty the acknowledgement carries data.
    Invalidate {
        /// Core losing its copy.
        core: CoreId,
    },
}

/// Directory event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Reads served by the bank.
    pub bank_reads: u64,
    /// Reads forwarded to a dirty owner.
    pub owner_forwards: u64,
    /// Invalidations issued.
    pub invalidations: u64,
    /// Write (ownership) requests processed.
    pub write_requests: u64,
}

/// The directory of one home bank.
///
/// ```
/// use disco_cache::coherence::{CohAction, Directory};
/// use disco_cache::addr::LineAddr;
///
/// let mut dir = Directory::new();
/// let a = LineAddr(0x10);
/// assert_eq!(dir.read(a, 1), vec![CohAction::DataFromBank { to: 1 }]);
/// // A second reader also hits the bank; a write by core 2 invalidates
/// // core 1's copy.
/// dir.read(a, 3);
/// let actions = dir.write(a, 2);
/// assert!(actions.contains(&CohAction::Invalidate { core: 1 }));
/// assert!(actions.contains(&CohAction::Invalidate { core: 3 }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    lines: HashMap<u64, DirState>,
    stats: DirStats,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// Current state of a line.
    pub fn state(&self, addr: LineAddr) -> DirState {
        self.lines
            .get(&addr.0)
            .cloned()
            .unwrap_or(DirState::Uncached)
    }

    /// A core reads the line.
    pub fn read(&mut self, addr: LineAddr, core: CoreId) -> Vec<CohAction> {
        let state = self.lines.remove(&addr.0).unwrap_or(DirState::Uncached);
        let (new_state, actions) = match state {
            DirState::Uncached => {
                self.stats.bank_reads += 1;
                (
                    DirState::Shared(vec![core]),
                    vec![CohAction::DataFromBank { to: core }],
                )
            }
            DirState::Shared(mut sharers) => {
                self.stats.bank_reads += 1;
                if !sharers.contains(&core) {
                    sharers.push(core);
                }
                (
                    DirState::Shared(sharers),
                    vec![CohAction::DataFromBank { to: core }],
                )
            }
            DirState::Owned { owner, mut sharers } if owner != core => {
                self.stats.owner_forwards += 1;
                if !sharers.contains(&core) {
                    sharers.push(core);
                }
                (
                    DirState::Owned { owner, sharers },
                    vec![CohAction::ForwardToOwner { owner, to: core }],
                )
            }
            DirState::Owned { owner, mut sharers } => {
                // Owner re-reads its own line: its ReadReq overtook its
                // own Writeback (the two ride different virtual networks
                // and are unordered). Serve from bank and account the
                // re-fetched copy as a share, so the demotion when the
                // writeback lands keeps it invalidatable; without this a
                // later writer never recalls the copy and the core reads
                // the stale line forever (found by disco-verify's
                // bounded model checker).
                self.stats.bank_reads += 1;
                if !sharers.contains(&core) {
                    sharers.push(core);
                }
                (
                    DirState::Owned { owner, sharers },
                    vec![CohAction::DataFromBank { to: core }],
                )
            }
        };
        self.lines.insert(addr.0, new_state);
        actions
    }

    /// A core requests ownership to write the line.
    pub fn write(&mut self, addr: LineAddr, core: CoreId) -> Vec<CohAction> {
        self.stats.write_requests += 1;
        let state = self.lines.remove(&addr.0).unwrap_or(DirState::Uncached);
        let mut actions = Vec::new();
        match state {
            DirState::Uncached => {
                actions.push(CohAction::DataFromBank { to: core });
            }
            DirState::Shared(sharers) => {
                for s in sharers {
                    if s != core {
                        self.stats.invalidations += 1;
                        actions.push(CohAction::Invalidate { core: s });
                    }
                }
                actions.push(CohAction::DataFromBank { to: core });
            }
            DirState::Owned { owner, sharers } => {
                for s in sharers {
                    // The owner can appear among the sharers (it re-read
                    // during its own writeback's flight); the forward
                    // below already revokes its copy.
                    if s != core && s != owner {
                        self.stats.invalidations += 1;
                        actions.push(CohAction::Invalidate { core: s });
                    }
                }
                if owner != core {
                    self.stats.invalidations += 1;
                    // The owner's dirty data travels with its ack; the
                    // requester gets the bank's copy refreshed by it. We
                    // model one forward.
                    actions.push(CohAction::ForwardToOwner { owner, to: core });
                } else {
                    actions.push(CohAction::DataFromBank { to: core });
                }
            }
        }
        self.lines.insert(
            addr.0,
            DirState::Owned {
                owner: core,
                sharers: Vec::new(),
            },
        );
        actions
    }

    /// The owner writes the line back (L1 eviction); ownership returns to
    /// the bank.
    pub fn writeback(&mut self, addr: LineAddr, core: CoreId) {
        if let Some(DirState::Owned { owner, sharers }) = self.lines.get(&addr.0).cloned() {
            if owner == core {
                let new = if sharers.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(sharers)
                };
                self.lines.insert(addr.0, new);
            }
        }
    }

    /// A core silently drops a clean copy (clean L1 eviction).
    pub fn drop_sharer(&mut self, addr: LineAddr, core: CoreId) {
        match self.lines.get_mut(&addr.0) {
            Some(DirState::Shared(sharers)) => {
                sharers.retain(|&s| s != core);
                if sharers.is_empty() {
                    self.lines.remove(&addr.0);
                }
            }
            Some(DirState::Owned { sharers, .. }) => {
                sharers.retain(|&s| s != core);
            }
            _ => {}
        }
    }

    /// The bank evicts the line (inclusive LLC): all cached copies must be
    /// recalled. Returns invalidations to send; the directory forgets the
    /// line.
    pub fn recall(&mut self, addr: LineAddr) -> Vec<CohAction> {
        let mut actions = Vec::new();
        match self.lines.remove(&addr.0) {
            Some(DirState::Shared(sharers)) => {
                for s in sharers {
                    self.stats.invalidations += 1;
                    actions.push(CohAction::Invalidate { core: s });
                }
            }
            Some(DirState::Owned { owner, sharers }) => {
                self.stats.invalidations += 1;
                actions.push(CohAction::Invalidate { core: owner });
                for s in sharers {
                    // The owner can also be listed as a sharer (re-read
                    // during its writeback's flight); invalidate once.
                    if s != owner {
                        self.stats.invalidations += 1;
                        actions.push(CohAction::Invalidate { core: s });
                    }
                }
            }
            _ => {}
        }
        actions
    }

    /// Lines with directory state.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LineAddr = LineAddr(0x44);

    #[test]
    fn read_chain_builds_sharers() {
        let mut dir = Directory::new();
        assert_eq!(dir.read(A, 0), vec![CohAction::DataFromBank { to: 0 }]);
        assert_eq!(dir.read(A, 1), vec![CohAction::DataFromBank { to: 1 }]);
        assert_eq!(dir.state(A), DirState::Shared(vec![0, 1]));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut dir = Directory::new();
        dir.read(A, 0);
        dir.read(A, 1);
        let actions = dir.write(A, 2);
        assert_eq!(
            actions,
            vec![
                CohAction::Invalidate { core: 0 },
                CohAction::Invalidate { core: 1 },
                CohAction::DataFromBank { to: 2 },
            ]
        );
        assert_eq!(
            dir.state(A),
            DirState::Owned {
                owner: 2,
                sharers: vec![]
            }
        );
    }

    #[test]
    fn read_after_write_forwards_to_owner() {
        let mut dir = Directory::new();
        dir.write(A, 3);
        let actions = dir.read(A, 1);
        assert_eq!(actions, vec![CohAction::ForwardToOwner { owner: 3, to: 1 }]);
        assert_eq!(
            dir.state(A),
            DirState::Owned {
                owner: 3,
                sharers: vec![1]
            }
        );
    }

    #[test]
    fn owner_reread_served_by_bank() {
        let mut dir = Directory::new();
        dir.write(A, 3);
        assert_eq!(dir.read(A, 3), vec![CohAction::DataFromBank { to: 3 }]);
    }

    #[test]
    fn write_steals_ownership() {
        let mut dir = Directory::new();
        dir.write(A, 0);
        let actions = dir.write(A, 1);
        assert_eq!(actions, vec![CohAction::ForwardToOwner { owner: 0, to: 1 }]);
        assert_eq!(
            dir.state(A),
            DirState::Owned {
                owner: 1,
                sharers: vec![]
            }
        );
        assert_eq!(dir.stats().invalidations, 1);
    }

    #[test]
    fn writeback_demotes_to_shared_or_uncached() {
        let mut dir = Directory::new();
        dir.write(A, 0);
        dir.read(A, 1);
        dir.writeback(A, 0);
        assert_eq!(dir.state(A), DirState::Shared(vec![1]));
        dir.drop_sharer(A, 1);
        assert_eq!(dir.state(A), DirState::Uncached);
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn recall_invalidates_everyone() {
        let mut dir = Directory::new();
        dir.write(A, 0);
        dir.read(A, 1);
        let actions = dir.recall(A);
        assert_eq!(actions.len(), 2);
        assert_eq!(dir.state(A), DirState::Uncached);
    }

    #[test]
    fn stale_writeback_ignored() {
        let mut dir = Directory::new();
        dir.write(A, 0);
        dir.write(A, 1); // core 0 lost ownership
        dir.writeback(A, 0); // late writeback from 0 must not demote 1
        assert_eq!(
            dir.state(A),
            DirState::Owned {
                owner: 1,
                sharers: vec![]
            }
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for DirState {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        match self {
            DirState::Uncached => w.put(&0u8),
            DirState::Shared(sharers) => {
                w.put(&1u8);
                w.put(sharers);
            }
            DirState::Owned { owner, sharers } => {
                w.put(&2u8);
                w.put(owner);
                w.put(sharers);
            }
        }
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => DirState::Uncached,
            1 => DirState::Shared(r.take()?),
            2 => DirState::Owned {
                owner: r.take()?,
                sharers: r.take()?,
            },
            tag => return Err(disco_snapshot::malformed(format!("DirState tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(DirStats {
    bank_reads,
    owner_forwards,
    invalidations,
    write_requests,
});

impl Directory {
    /// Writes the directory's full state (line map in sorted-address
    /// order, counters).
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.snap_map(&self.lines);
        w.put(&self.stats);
    }

    /// Overlays state written by [`Directory::snap_state`].
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        self.lines = r.restore_map()?;
        self.stats = r.take()?;
        Ok(())
    }
}
