//! Private L1 data cache: set-associative, LRU, write-back,
//! write-allocate. L1 always stores uncompressed lines (the paper
//! compresses the LLC and the network; §1 explains why L1/core-side
//! compression is the wrong place).

use crate::addr::LineAddr;
use crate::config::L1Config;
use crate::replacement::{ReplState, ReplacementPolicy};
use disco_compress::CacheLine;

/// A dirty line evicted from the cache, to be written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// The evicted line's address.
    pub addr: LineAddr,
    /// Its data.
    pub line: CacheLine,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: u64,
    line: CacheLine,
    dirty: bool,
    repl: ReplState,
}

/// Running hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Coherence invalidations received.
    pub invalidations: u64,
}

impl L1Stats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// A private L1 data cache.
///
/// ```
/// use disco_cache::l1::L1Cache;
/// use disco_cache::addr::LineAddr;
/// use disco_cache::config::L1Config;
/// use disco_compress::CacheLine;
///
/// let mut l1 = L1Cache::new(L1Config::default());
/// let a = LineAddr(0x40);
/// assert!(!l1.probe(a));
/// l1.fill(a, CacheLine::zeroed(), false);
/// assert!(l1.probe(a));
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    config: L1Config,
    sets: Vec<Vec<Entry>>,
    policy: ReplacementPolicy,
    clock: u64,
    stats: L1Stats,
}

impl L1Cache {
    /// An empty cache.
    pub fn new(config: L1Config) -> Self {
        let sets = vec![Vec::new(); config.sets()];
        let policy = ReplacementPolicy::new(config.replacement, 0x11ca);
        L1Cache {
            config,
            sets,
            policy,
            clock: 0,
            stats: L1Stats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        addr.set(self.config.sets())
    }

    /// True if the line is present (no LRU update, no stats).
    pub fn probe(&self, addr: LineAddr) -> bool {
        let tag = addr.tag(self.config.sets());
        self.sets[self.set_of(addr)].iter().any(|e| e.tag == tag)
    }

    /// Demand access. On a hit the LRU is refreshed, the line is returned,
    /// and a write marks it dirty (optionally replacing the data). On a
    /// miss, `None` — the caller allocates an MSHR and fetches the line.
    pub fn access(&mut self, addr: LineAddr, write: Option<CacheLine>) -> Option<CacheLine> {
        self.clock += 1;
        let sets = self.config.sets();
        let tag = addr.tag(sets);
        let set = self.set_of(addr);
        let clock = self.clock;
        for e in &mut self.sets[set] {
            if e.tag == tag {
                self.policy.touch(&mut e.repl, clock);
                if let Some(new_line) = write {
                    e.line = new_line;
                    e.dirty = true;
                }
                self.stats.hits += 1;
                return Some(e.line);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Installs a fetched line, evicting the LRU way if the set is full.
    /// Returns the dirty victim, if any, for write-back.
    pub fn fill(&mut self, addr: LineAddr, line: CacheLine, dirty: bool) -> Option<Writeback> {
        self.clock += 1;
        let sets = self.config.sets();
        let tag = addr.tag(sets);
        let set = self.set_of(addr);
        // Refill over an existing entry (e.g. a racing coherence refetch).
        let clock = self.clock;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.tag == tag) {
            e.line = line;
            e.dirty |= dirty;
            self.policy.touch(&mut e.repl, clock);
            return None;
        }
        let mut victim = None;
        if self.sets[set].len() >= self.config.assoc {
            let candidates: Vec<(usize, ReplState)> = self.sets[set]
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.repl))
                .collect();
            let (idx, clear_epoch) = self.policy.victim(&candidates);
            if clear_epoch {
                for e in self.sets[set].iter_mut() {
                    e.repl.referenced = false;
                }
            }
            let evicted = self.sets[set].swap_remove(idx);
            if evicted.dirty {
                self.stats.writebacks += 1;
                let evicted_addr = LineAddr(evicted.tag * sets as u64 + set as u64);
                victim = Some(Writeback {
                    addr: evicted_addr,
                    line: evicted.line,
                });
            }
        }
        let mut repl = ReplState::default();
        self.policy.touch(&mut repl, clock);
        self.sets[set].push(Entry {
            tag,
            line,
            dirty,
            repl,
        });
        victim
    }

    /// Coherence invalidation. Returns the line if it was dirty (the
    /// protocol forwards it).
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let sets = self.config.sets();
        let tag = addr.tag(sets);
        let set = self.set_of(addr);
        if let Some(idx) = self.sets[set].iter().position(|e| e.tag == tag) {
            self.stats.invalidations += 1;
            let e = self.sets[set].swap_remove(idx);
            return e.dirty.then_some(e.line);
        }
        None
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L1Cache {
        // 4 sets × 2 ways for easy eviction tests.
        L1Cache::new(L1Config {
            capacity_bytes: 4 * 2 * 64,
            assoc: 2,
            ..L1Config::default()
        })
    }

    fn line(v: u64) -> CacheLine {
        CacheLine::from_u64_words([v; 8])
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut l1 = small();
        let a = LineAddr(4);
        assert_eq!(l1.access(a, None), None);
        assert!(l1.fill(a, line(7), false).is_none());
        assert_eq!(l1.access(a, None), Some(line(7)));
        assert_eq!(l1.stats().hits, 1);
        assert_eq!(l1.stats().misses, 1);
    }

    #[test]
    fn write_marks_dirty_and_evicts_as_writeback() {
        let mut l1 = small();
        let a = LineAddr(0);
        l1.fill(a, line(1), false);
        assert!(l1.access(a, Some(line(2))).is_some());
        // Fill two more lines mapping to set 0 (addresses ≡ 0 mod 4).
        l1.fill(LineAddr(4), line(3), false);
        let wb = l1.fill(LineAddr(8), line(4), false);
        let wb = wb.expect("dirty LRU victim must be written back");
        assert_eq!(wb.addr, a);
        assert_eq!(wb.line, line(2));
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut l1 = small();
        l1.fill(LineAddr(0), line(1), false);
        l1.fill(LineAddr(4), line(2), false);
        assert!(l1.fill(LineAddr(8), line(3), false).is_none());
        assert_eq!(l1.stats().writebacks, 0);
    }

    #[test]
    fn lru_prefers_recently_used() {
        let mut l1 = small();
        l1.fill(LineAddr(0), line(1), false);
        l1.fill(LineAddr(4), line(2), false);
        // Touch line 0 so line 4 is LRU.
        l1.access(LineAddr(0), None);
        l1.fill(LineAddr(8), line(3), false);
        assert!(l1.probe(LineAddr(0)));
        assert!(!l1.probe(LineAddr(4)));
    }

    #[test]
    fn invalidate_returns_dirty_data() {
        let mut l1 = small();
        l1.fill(LineAddr(0), line(1), true);
        assert_eq!(l1.invalidate(LineAddr(0)), Some(line(1)));
        assert!(!l1.probe(LineAddr(0)));
        assert_eq!(l1.invalidate(LineAddr(0)), None);
        assert_eq!(l1.stats().invalidations, 1);
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut l1 = small();
        let a = LineAddr(12); // set 0, tag 3
        l1.fill(a, line(9), true);
        l1.fill(LineAddr(16), line(1), false);
        let wb = l1
            .fill(LineAddr(20), line(2), false)
            .expect("evicts dirty line 12");
        assert_eq!(wb.addr, a);
    }

    #[test]
    fn table2_l1_shape() {
        let l1 = L1Cache::new(L1Config::default());
        assert_eq!(l1.sets.len(), 128);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(Entry {
    tag,
    line,
    dirty,
    repl,
});

disco_snapshot::snap_fields!(L1Stats {
    hits,
    misses,
    writebacks,
    invalidations,
});

impl L1Cache {
    /// Writes the cache's mutable state (arrays, replacement state,
    /// clock, counters); `config` is rebuilt from the builder on
    /// restore.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.sets);
        w.put(&self.policy);
        w.put(&self.clock);
        w.put(&self.stats);
    }

    /// Overlays state written by [`L1Cache::snap_state`] onto a cache
    /// freshly built with the same config.
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let sets: Vec<Vec<Entry>> = r.take()?;
        if sets.len() != self.sets.len() {
            return Err(disco_snapshot::malformed(format!(
                "L1 set count {} in snapshot, {} in rebuilt cache",
                sets.len(),
                self.sets.len()
            )));
        }
        self.sets = sets;
        self.policy = r.take()?;
        self.clock = r.take()?;
        self.stats = r.take()?;
        Ok(())
    }
}
