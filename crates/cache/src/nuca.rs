//! A NUCA L2 bank with optional compressed (segmented) storage.
//!
//! In compressed mode the data array is managed as 8-byte segments with a
//! doubled tag array, the standard decoupled organization of compressed
//! caches (paper refs. \[2\], \[5\]): a set's 8 ways of data (64 segments) can hold up to
//! 16 lines when they compress to half size or better. This is where
//! cache compression's capacity benefit — and therefore the miss-rate
//! reduction all evaluated schemes share — comes from.

use crate::addr::LineAddr;
use crate::config::{BankConfig, SEGMENT_BYTES};
use crate::replacement::{ReplState, ReplacementPolicy};
use disco_compress::{CacheLine, CompressedLine};

/// A line as stored in the bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredLine {
    /// Uncompressed (occupies all 8 segments).
    Raw(CacheLine),
    /// Compressed (occupies `ceil(bytes / 8)` segments).
    Compressed(CompressedLine),
}

impl StoredLine {
    /// Data-array segments this line occupies.
    pub fn segments(&self) -> usize {
        match self {
            StoredLine::Raw(_) => disco_compress::LINE_BYTES / SEGMENT_BYTES,
            StoredLine::Compressed(c) => c.size_bytes().div_ceil(SEGMENT_BYTES).max(1),
        }
    }

    /// Stored size in bytes (segment-granular).
    pub fn size_bytes(&self) -> usize {
        self.segments() * SEGMENT_BYTES
    }

    /// True for [`StoredLine::Compressed`].
    pub fn is_compressed(&self) -> bool {
        matches!(self, StoredLine::Compressed(_))
    }
}

/// A line pushed out of the bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Its address.
    pub addr: LineAddr,
    /// Its data, in stored form.
    pub data: StoredLine,
    /// True if it must be written back to memory.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: u64,
    data: StoredLine,
    dirty: bool,
    repl: ReplState,
}

/// Bank event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Fills.
    pub insertions: u64,
    /// Evictions (clean + dirty).
    pub evictions: u64,
    /// Dirty evictions.
    pub dirty_evictions: u64,
    /// Data-array bytes moved by hits and fills (segment-granular). The
    /// energy model charges the data array per byte, so compressed lines
    /// cost proportionally less to read and write.
    pub bytes_accessed: u64,
}

impl BankStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// One NUCA bank.
///
/// ```
/// use disco_cache::nuca::{NucaBank, StoredLine};
/// use disco_cache::addr::LineAddr;
/// use disco_cache::config::BankConfig;
/// use disco_compress::CacheLine;
///
/// let mut bank = NucaBank::new(BankConfig::default(), 0, 16);
/// let a = LineAddr(0); // home bank 0
/// assert!(bank.lookup(a).is_none());
/// bank.insert(a, StoredLine::Raw(CacheLine::zeroed()), false);
/// assert!(bank.lookup(a).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct NucaBank {
    config: BankConfig,
    banks_total: usize,
    sets: Vec<Vec<Entry>>,
    policy: ReplacementPolicy,
    clock: u64,
    stats: BankStats,
    /// Boundary-crossing events since the last [`NucaBank::drain_trace`].
    /// The bank has no notion of the global cycle, so the harness drains
    /// and stamps these at the end of each tick, in bank-index order.
    #[cfg(feature = "trace")]
    site_log: disco_trace::EventList,
    #[cfg(feature = "trace")]
    bank_id: u16,
}

impl NucaBank {
    /// An empty bank. `bank_id` is informational; `banks_total` defines
    /// the address interleaving.
    pub fn new(config: BankConfig, bank_id: usize, banks_total: usize) -> Self {
        NucaBank {
            config,
            banks_total,
            sets: vec![Vec::new(); config.sets()],
            policy: ReplacementPolicy::new(config.replacement, 0xba5e ^ bank_id as u64),
            clock: 0,
            stats: BankStats::default(),
            #[cfg(feature = "trace")]
            site_log: disco_trace::EventList::default(),
            #[cfg(feature = "trace")]
            bank_id: bank_id as u16,
        }
    }

    /// Takes the events accumulated since the last drain (`trace` only).
    #[cfg(feature = "trace")]
    pub fn drain_trace(&mut self) -> Vec<disco_trace::Event> {
        self.site_log.drain()
    }

    /// The bank's configuration.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        addr.bank_set(self.banks_total, self.config.sets())
    }

    fn tag_of(&self, addr: LineAddr) -> u64 {
        addr.bank_tag(self.banks_total, self.config.sets())
    }

    fn segments_used(&self, set: usize) -> usize {
        self.sets[set].iter().map(|e| e.data.segments()).sum()
    }

    /// Demand lookup with LRU update.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&StoredLine> {
        self.clock += 1;
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        let clock = self.clock;
        match self.sets[set].iter().position(|e| e.tag == tag) {
            Some(i) => {
                let entry = &mut self.sets[set][i];
                self.policy.touch(&mut entry.repl, clock);
                self.stats.hits += 1;
                disco_trace::emit!(
                    self.site_log,
                    disco_trace::Event::L2Access {
                        node: self.bank_id,
                        line: addr.0,
                        hit: true,
                    }
                );
                let data = &self.sets[set][i].data;
                self.stats.bytes_accessed += data.size_bytes() as u64;
                Some(data)
            }
            None => {
                self.stats.misses += 1;
                disco_trace::emit!(
                    self.site_log,
                    disco_trace::Event::L2Access {
                        node: self.bank_id,
                        line: addr.0,
                        hit: false,
                    }
                );
                None
            }
        }
    }

    /// Presence check without stats or LRU effects.
    pub fn contains(&self, addr: LineAddr) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_of(addr)].iter().any(|e| e.tag == tag)
    }

    /// Marks a resident line dirty and replaces its data (an L1 writeback
    /// landing on a present line). Returns evictions if the new encoding
    /// is larger and overflows the set.
    pub fn update(&mut self, addr: LineAddr, data: StoredLine) -> Vec<Eviction> {
        self.insert_inner(addr, data, true)
    }

    /// Installs a line, evicting LRU lines until both a tag slot and
    /// enough data segments are free. Returns the evictions, dirty ones
    /// first .. in eviction order.
    pub fn insert(&mut self, addr: LineAddr, data: StoredLine, dirty: bool) -> Vec<Eviction> {
        self.insert_inner(addr, data, dirty)
    }

    fn insert_inner(&mut self, addr: LineAddr, data: StoredLine, dirty: bool) -> Vec<Eviction> {
        self.clock += 1;
        self.stats.insertions += 1;
        self.stats.bytes_accessed += data.size_bytes() as u64;
        disco_trace::emit!(
            self.site_log,
            disco_trace::Event::L2Insert {
                node: self.bank_id,
                line: addr.0,
            }
        );
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        let sets_count = self.config.sets();
        // Replace in place if present (dirty is sticky).
        let mut was_dirty = false;
        if let Some(idx) = self.sets[set].iter().position(|e| e.tag == tag) {
            was_dirty = self.sets[set][idx].dirty;
            self.sets[set].remove(idx);
        }
        let clock = self.clock;
        let mut repl = ReplState::default();
        self.policy.touch(&mut repl, clock);
        self.sets[set].push(Entry {
            tag,
            data,
            dirty: dirty || was_dirty,
            repl,
        });
        // Evict until the set fits its tag-slot and segment budgets,
        // never choosing the line just inserted.
        let mut evictions = Vec::new();
        let tag_slots = self.config.tag_slots();
        let seg_budget = self.config.segments_per_set();
        loop {
            let over_tags = self.sets[set].len() > tag_slots;
            let over_segs = self.segments_used(set) > seg_budget;
            if !over_tags && !over_segs {
                break;
            }
            let candidates: Vec<(usize, ReplState)> = self.sets[set]
                .iter()
                .enumerate()
                .filter(|(_, e)| e.tag != tag)
                .map(|(i, e)| (i, e.repl))
                .collect();
            assert!(
                !candidates.is_empty(),
                "a raw line always fits one way; another entry must exist"
            );
            let (victim_idx, clear_epoch) = self.policy.victim(&candidates);
            if clear_epoch {
                for e in self.sets[set].iter_mut() {
                    e.repl.referenced = false;
                }
            }
            let e = self.sets[set].remove(victim_idx);
            self.stats.evictions += 1;
            if e.dirty {
                self.stats.dirty_evictions += 1;
            }
            let evicted_addr = LineAddr(
                (e.tag * sets_count as u64 + set as u64) * self.banks_total as u64
                    + (addr.0 % self.banks_total as u64),
            );
            evictions.push(Eviction {
                addr: evicted_addr,
                data: e.data,
                dirty: e.dirty,
            });
        }
        evictions
    }

    /// Removes a line (inclusive-LLC recall). Returns its data and dirty
    /// bit.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<(StoredLine, bool)> {
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        let idx = self.sets[set].iter().position(|e| e.tag == tag)?;
        let e = self.sets[set].remove(idx);
        Some((e.data, e.dirty))
    }

    /// Lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Mean lines per set — > `assoc` means compression is buying
    /// effective capacity.
    pub fn effective_ways(&self) -> f64 {
        self.resident_lines() as f64 / self.sets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_compress::{scheme::Compressor, Codec};

    const BANKS: usize = 16;

    fn tiny(compressed: bool) -> NucaBank {
        // 2 sets × 2 ways: segment budget 16, tag slots 2 or 4.
        NucaBank::new(
            BankConfig {
                capacity_bytes: 2 * 2 * 64,
                assoc: 2,
                hit_latency: 4,
                compressed,
                ..BankConfig::default()
            },
            0,
            BANKS,
        )
    }

    /// Line addresses that map to bank 0, set `set` of the tiny bank.
    fn addr_in_set(set: usize, k: u64) -> LineAddr {
        LineAddr(((k * 2 + set as u64) * BANKS as u64) % (u64::MAX / 2))
    }

    fn raw(v: u64) -> StoredLine {
        StoredLine::Raw(CacheLine::from_u64_words([v; 8]))
    }

    fn small_compressed() -> StoredLine {
        let codec = Codec::delta();
        StoredLine::Compressed(codec.compress(&CacheLine::zeroed()))
    }

    #[test]
    fn segments_accounting() {
        assert_eq!(raw(1).segments(), 8);
        assert_eq!(small_compressed().segments(), 1);
        assert_eq!(small_compressed().size_bytes(), 8);
    }

    #[test]
    fn hit_after_insert() {
        let mut bank = tiny(false);
        let a = addr_in_set(0, 1);
        assert!(bank.lookup(a).is_none());
        bank.insert(a, raw(5), false);
        assert!(bank.lookup(a).is_some());
        assert_eq!(bank.stats().hits, 1);
        assert_eq!(bank.stats().misses, 1);
    }

    #[test]
    fn uncompressed_mode_holds_assoc_lines() {
        let mut bank = tiny(false);
        let a = addr_in_set(0, 1);
        let b = addr_in_set(0, 2);
        let c = addr_in_set(0, 3);
        assert!(bank.insert(a, raw(1), false).is_empty());
        assert!(bank.insert(b, raw(2), false).is_empty());
        let ev = bank.insert(c, raw(3), true);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, a);
        assert!(!ev[0].dirty);
        assert_eq!(bank.resident_lines(), 2);
    }

    #[test]
    fn compressed_mode_packs_more_lines() {
        let mut bank = tiny(true);
        // Four 1-segment lines fit in a 2-way set (budget 16 segments,
        // 4 tag slots).
        for k in 1..=4 {
            let ev = bank.insert(addr_in_set(0, k), small_compressed(), false);
            assert!(ev.is_empty(), "insert {k} must not evict");
        }
        assert_eq!(bank.resident_lines(), 4);
        assert!(bank.effective_ways() > 1.9);
    }

    #[test]
    fn tag_slots_bound_compressed_lines() {
        let mut bank = tiny(true);
        for k in 1..=5 {
            bank.insert(addr_in_set(0, k), small_compressed(), false);
        }
        // 5th line exceeds the 4 tag slots: one eviction.
        assert_eq!(bank.resident_lines(), 4);
        assert_eq!(bank.stats().evictions, 1);
    }

    #[test]
    fn segment_budget_bounds_raw_lines_in_compressed_mode() {
        let mut bank = tiny(true);
        let ev1 = bank.insert(addr_in_set(0, 1), raw(1), false);
        let ev2 = bank.insert(addr_in_set(0, 2), raw(2), false);
        assert!(ev1.is_empty() && ev2.is_empty());
        // Two raw lines = 16 segments = full budget; a third forces out
        // the LRU even though tag slots remain.
        let ev3 = bank.insert(addr_in_set(0, 3), raw(3), false);
        assert_eq!(ev3.len(), 1);
    }

    #[test]
    fn update_marks_dirty_and_can_grow() {
        let mut bank = tiny(true);
        let a = addr_in_set(0, 1);
        bank.insert(a, small_compressed(), false);
        bank.insert(addr_in_set(0, 2), raw(2), false);
        bank.insert(addr_in_set(0, 3), raw(3), false); // 1 + 8 + 8 = 17 > 16? evicts
                                                       // Now grow line `a` to raw: may evict others.
        let _ = bank.update(a, raw(9));
        let (data, dirty) = bank.invalidate(a).expect("a resident");
        assert!(dirty);
        assert_eq!(data, raw(9));
    }

    #[test]
    fn eviction_address_reconstructs() {
        let mut bank = tiny(false);
        let a = addr_in_set(1, 7);
        bank.insert(a, raw(1), true);
        bank.insert(addr_in_set(1, 8), raw(2), false);
        let ev = bank.insert(addr_in_set(1, 9), raw(3), false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, a, "evicted address must reconstruct exactly");
        assert!(ev[0].dirty);
    }

    #[test]
    fn full_size_bank_matches_table2() {
        let bank = NucaBank::new(BankConfig::default(), 0, 16);
        assert_eq!(bank.sets.len(), 512);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for StoredLine {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        match self {
            StoredLine::Raw(line) => {
                w.put(&0u8);
                w.put(line);
            }
            StoredLine::Compressed(c) => {
                w.put(&1u8);
                w.put(c);
            }
        }
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => StoredLine::Raw(r.take()?),
            1 => StoredLine::Compressed(r.take()?),
            tag => return Err(disco_snapshot::malformed(format!("StoredLine tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(Entry {
    tag,
    data,
    dirty,
    repl,
});

disco_snapshot::snap_fields!(BankStats {
    hits,
    misses,
    insertions,
    evictions,
    dirty_evictions,
    bytes_accessed,
});

impl NucaBank {
    /// Writes the bank's mutable state. `config`, `banks_total`, and the
    /// trace identifiers are rebuilt from the builder; the `site_log` is
    /// drained every tick and therefore empty at snapshot boundaries.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.sets);
        w.put(&self.policy);
        w.put(&self.clock);
        w.put(&self.stats);
    }

    /// Overlays state written by [`NucaBank::snap_state`] onto a bank
    /// freshly built with the same config.
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let sets: Vec<Vec<Entry>> = r.take()?;
        if sets.len() != self.sets.len() {
            return Err(disco_snapshot::malformed(format!(
                "bank set count {} in snapshot, {} in rebuilt bank",
                sets.len(),
                self.sets.len()
            )));
        }
        self.sets = sets;
        self.policy = r.take()?;
        self.clock = r.take()?;
        self.stats = r.take()?;
        Ok(())
    }
}
