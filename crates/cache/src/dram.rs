//! An open-page DRAM model with per-bank row buffers (the DRAMsim
//! stand-in; Table 2: 4 GB, 1 rank, 1 channel, 8 banks).
//!
//! Each bank keeps one row open. An access to the open row pays only the
//! CAS + transfer latency; a different row pays precharge + activate +
//! CAS. Banks serialize back-to-back accesses through a busy window.

use crate::addr::LineAddr;
use crate::config::DramConfig;

/// DRAM event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses.
    pub reads: u64,
    /// Write (writeback) accesses.
    pub writes: u64,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that had to open a new row.
    pub row_misses: u64,
    /// Total cycles requests waited behind busy banks.
    pub conflict_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }
}

/// Main memory behind the on-chip memory controllers.
///
/// ```
/// use disco_cache::dram::Dram;
/// use disco_cache::addr::LineAddr;
/// use disco_cache::config::DramConfig;
///
/// let mut dram = Dram::new(DramConfig::default());
/// let cold = dram.access(LineAddr(0), 100, false);
/// assert_eq!(cold, 100 + 160); // row miss
/// // The next access to the same bank's open row pays only the CAS
/// // latency (line 8 → bank 0, row 0, like line 0).
/// let warm = dram.access(LineAddr(8), 400, false);
/// assert_eq!(warm, 400 + 40);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    bank_free_at: Vec<u64>,
    open_row: Vec<Option<u64>>,
    stats: DramStats,
    /// Fault schedule for bank-stall bursts (`faults` only). `None`
    /// keeps the timing byte-identical to a faults-free build.
    #[cfg(feature = "faults")]
    plan: Option<disco_faults::FaultPlan>,
    /// Extra cycles charged by injected bank stalls (`faults` only).
    #[cfg(feature = "faults")]
    fault_stall_cycles: u64,
    /// Off-chip access events since the last [`Dram::drain_trace`]; the
    /// harness drains and cycle-stamps these at the end of each tick.
    #[cfg(feature = "trace")]
    site_log: disco_trace::EventList,
}

impl Dram {
    /// An idle DRAM with all rows closed.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            config,
            bank_free_at: vec![0; config.banks],
            open_row: vec![None; config.banks],
            stats: DramStats::default(),
            #[cfg(feature = "faults")]
            plan: None,
            #[cfg(feature = "faults")]
            fault_stall_cycles: 0,
            #[cfg(feature = "trace")]
            site_log: disco_trace::EventList::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Arms the bank-stall fault schedule (`faults` only).
    #[cfg(feature = "faults")]
    pub fn set_fault_plan(&mut self, plan: disco_faults::FaultPlan) {
        self.plan = plan.is_active().then_some(plan);
    }

    /// Cycles lost to injected bank stalls (`faults` only).
    #[cfg(feature = "faults")]
    pub fn fault_stall_cycles(&self) -> u64 {
        self.fault_stall_cycles
    }

    /// Takes the events accumulated since the last drain (`trace` only).
    #[cfg(feature = "trace")]
    pub fn drain_trace(&mut self) -> Vec<disco_trace::Event> {
        self.site_log.drain()
    }

    /// Issues an access at cycle `now`; returns the completion cycle.
    /// Accesses to a busy bank queue behind it; the row buffer decides
    /// the service latency.
    pub fn access(&mut self, addr: LineAddr, now: u64, write: bool) -> u64 {
        let bank = (addr.0 % self.config.banks as u64) as usize;
        let row = addr.0 / self.config.banks as u64 / self.config.row_lines.max(1) as u64;
        #[allow(unused_mut)]
        let mut start = now.max(self.bank_free_at[bank]);
        self.stats.conflict_cycles += start - now;
        // A scheduled bank-stall burst holds the bank for an extra
        // penalty window before it can begin service. The lost cycles
        // are tallied separately from ordinary bank conflicts.
        #[cfg(feature = "faults")]
        if let Some(plan) = &self.plan {
            if plan.window_fires(
                disco_faults::FaultKind::DramStall,
                now,
                disco_faults::site::dram_bank(bank),
            ) {
                self.fault_stall_cycles += plan.dram_stall_penalty;
                start += plan.dram_stall_penalty;
            }
        }
        let row_hit = self.open_row[bank] == Some(row);
        let latency = if row_hit {
            self.stats.row_hits += 1;
            self.config.row_hit_latency
        } else {
            self.stats.row_misses += 1;
            self.open_row[bank] = Some(row);
            self.config.access_latency
        };
        disco_trace::emit!(
            self.site_log,
            disco_trace::Event::DramAccess {
                line: addr.0,
                write,
                row_hit,
            }
        );
        let done = start + latency;
        self.bank_free_at[bank] = start + self.config.bank_busy;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_is_a_row_miss() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.access(LineAddr(0), 50, false), 210);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().conflict_cycles, 0);
    }

    #[test]
    fn same_row_hits_fast_path() {
        let mut d = Dram::new(DramConfig::default());
        d.access(LineAddr(0), 0, false);
        // Line 8 → bank 0, same row (row_lines = 128).
        let done = d.access(LineAddr(8), 500, true);
        assert_eq!(done, 500 + DramConfig::default().row_hit_latency);
        assert_eq!(d.stats().row_hits, 1);
        assert!((d.stats().row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_conflict_reopens() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        d.access(LineAddr(0), 0, false);
        // Same bank, different row: bank 0, row 1.
        let far = LineAddr(cfg.banks as u64 * cfg.row_lines as u64);
        let done = d.access(far, 500, false);
        assert_eq!(done, 500 + cfg.access_latency);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = Dram::new(DramConfig::default());
        let first = d.access(LineAddr(0), 0, false);
        let second = d.access(LineAddr(8), 0, true); // bank 0, same row
        assert_eq!(second, first - 160 + 24 + 40);
        assert_eq!(d.stats().conflict_cycles, 24);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(LineAddr(0), 0, false);
        let b = d.access(LineAddr(1), 0, false);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(Dram::new(DramConfig::default()).stats().row_hit_rate(), 0.0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn bank_stalls_delay_service_and_are_counted() {
        let mut plan = disco_faults::FaultPlan::new(11);
        plan.dram_stall_rate = 1.0; // every window stalls
        let mut d = Dram::new(DramConfig::default());
        d.set_fault_plan(plan.clone());
        let done = d.access(LineAddr(0), 50, false);
        assert_eq!(done, 50 + plan.dram_stall_penalty + 160);
        assert_eq!(d.fault_stall_cycles(), plan.dram_stall_penalty);
        // Ordinary conflict accounting stays separate from fault stalls.
        assert_eq!(d.stats().conflict_cycles, 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn inactive_plan_leaves_timing_untouched() {
        let mut d = Dram::new(DramConfig::default());
        d.set_fault_plan(disco_faults::FaultPlan::new(11)); // all rates zero
        assert_eq!(d.access(LineAddr(0), 50, false), 210);
        assert_eq!(d.fault_stall_cycles(), 0);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(DramStats {
    reads,
    writes,
    row_hits,
    row_misses,
    conflict_cycles,
});

impl Dram {
    /// Writes the controller's mutable state. `config` (and the armed
    /// fault plan) are rebuilt from the builder on restore; the
    /// `site_log` is drained every tick and empty at boundaries.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.bank_free_at);
        w.put(&self.open_row);
        w.put(&self.stats);
        #[cfg(feature = "faults")]
        w.put(&self.fault_stall_cycles);
    }

    /// Overlays state written by [`Dram::snap_state`].
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let bank_free_at: Vec<u64> = r.take()?;
        if bank_free_at.len() != self.bank_free_at.len() {
            return Err(disco_snapshot::malformed(format!(
                "DRAM bank count {} in snapshot, {} in rebuilt controller",
                bank_free_at.len(),
                self.bank_free_at.len()
            )));
        }
        self.bank_free_at = bank_free_at;
        self.open_row = r.take()?;
        self.stats = r.take()?;
        #[cfg(feature = "faults")]
        {
            self.fault_stall_cycles = r.take()?;
        }
        Ok(())
    }
}
