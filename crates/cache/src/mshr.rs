//! Miss Status Handling Registers: track outstanding L1 misses, merge
//! secondary misses, and bound a core's memory-level parallelism.

use crate::addr::LineAddr;
use std::collections::HashMap;

/// One outstanding miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Missing line.
    pub addr: LineAddr,
    /// Cycle the primary miss was issued.
    pub issued_at: u64,
    /// True if any merged access was a write (fetch-for-ownership).
    pub write: bool,
    /// Number of accesses merged into this entry (primary + secondaries).
    /// Wide on purpose: long fault-recovery stalls can pile an unbounded
    /// number of secondaries onto one entry.
    pub merged: u64,
    /// True while the entry only serves a prefetch. A demand access
    /// merging into it clears the flag and restarts the latency clock
    /// (late-prefetch accounting).
    pub prefetch: bool,
}

/// Outcome of attempting to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated — send a request into the network.
    Allocated,
    /// An entry for this line already exists — merged, no new request.
    Merged,
    /// The file is full — the core must stall.
    Full,
}

/// A per-core MSHR file.
///
/// ```
/// use disco_cache::mshr::{MshrFile, MshrOutcome};
/// use disco_cache::addr::LineAddr;
///
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.allocate(LineAddr(1), 0, false), MshrOutcome::Allocated);
/// assert_eq!(mshrs.allocate(LineAddr(1), 1, true), MshrOutcome::Merged);
/// assert_eq!(mshrs.allocate(LineAddr(2), 2, false), MshrOutcome::Allocated);
/// assert_eq!(mshrs.allocate(LineAddr(3), 3, false), MshrOutcome::Full);
/// let done = mshrs.complete(LineAddr(1)).expect("entry exists");
/// assert!(done.write, "merged write upgraded the entry");
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: HashMap<u64, MshrEntry>,
}

impl MshrFile {
    /// A file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: HashMap::new(),
        }
    }

    /// Attempts to track a demand miss for `addr` issued at `now`.
    pub fn allocate(&mut self, addr: LineAddr, now: u64, write: bool) -> MshrOutcome {
        self.allocate_inner(addr, now, write, false)
    }

    /// Attempts to track a prefetch for `addr` (never merges into demand
    /// latency accounting unless a demand access later joins it).
    pub fn allocate_prefetch(&mut self, addr: LineAddr, now: u64) -> MshrOutcome {
        self.allocate_inner(addr, now, false, true)
    }

    fn allocate_inner(
        &mut self,
        addr: LineAddr,
        now: u64,
        write: bool,
        prefetch: bool,
    ) -> MshrOutcome {
        if let Some(e) = self.entries.get_mut(&addr.0) {
            e.merged += 1;
            e.write |= write;
            if e.prefetch && !prefetch {
                // Late prefetch: the demand clock starts now.
                e.prefetch = false;
                e.issued_at = now;
            }
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(
            addr.0,
            MshrEntry {
                addr,
                issued_at: now,
                write,
                merged: 1,
                prefetch,
            },
        );
        MshrOutcome::Allocated
    }

    /// Completes (and removes) the entry when the fill arrives.
    pub fn complete(&mut self, addr: LineAddr) -> Option<MshrEntry> {
        self.entries.remove(&addr.0)
    }

    /// Is a miss for this line already outstanding?
    pub fn pending(&self, addr: LineAddr) -> bool {
        self.entries.contains_key(&addr.0)
    }

    /// Outstanding miss count.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// True when no more primary misses can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(LineAddr(10), 5, false), MshrOutcome::Allocated);
        assert!(m.pending(LineAddr(10)));
        assert_eq!(m.allocate(LineAddr(10), 6, false), MshrOutcome::Merged);
        assert_eq!(m.in_use(), 1);
        let e = m.complete(LineAddr(10)).unwrap();
        assert_eq!(e.issued_at, 5);
        assert_eq!(e.merged, 2);
        assert!(!m.pending(LineAddr(10)));
        assert!(m.complete(LineAddr(10)).is_none());
    }

    #[test]
    fn full_file_stalls() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(LineAddr(1), 0, false), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.allocate(LineAddr(2), 0, false), MshrOutcome::Full);
        m.complete(LineAddr(1));
        assert_eq!(m.allocate(LineAddr(2), 0, false), MshrOutcome::Allocated);
    }

    #[test]
    fn write_upgrade_sticks() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr(3), 0, false);
        m.allocate(LineAddr(3), 1, true);
        m.allocate(LineAddr(3), 2, false);
        let e = m.complete(LineAddr(3)).unwrap();
        assert!(e.write);
        assert_eq!(e.merged, 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn late_prefetch_restarts_the_demand_clock() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate_prefetch(LineAddr(9), 10), MshrOutcome::Allocated);
        assert!(m.complete(LineAddr(9)).unwrap().prefetch);
        assert_eq!(m.allocate_prefetch(LineAddr(9), 20), MshrOutcome::Allocated);
        assert_eq!(m.allocate(LineAddr(9), 50, false), MshrOutcome::Merged);
        let e = m.complete(LineAddr(9)).unwrap();
        assert!(!e.prefetch, "demand merge clears the prefetch flag");
        assert_eq!(e.issued_at, 50, "latency clock restarted at the demand");
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(MshrEntry {
    addr,
    issued_at,
    write,
    merged,
    prefetch,
});

impl MshrFile {
    /// Writes the in-flight miss entries; `capacity` is config.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.snap_map(&self.entries);
    }

    /// Overlays state written by [`MshrFile::snap_state`].
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let entries: std::collections::HashMap<u64, MshrEntry> = r.restore_map()?;
        if entries.len() > self.capacity {
            return Err(disco_snapshot::malformed(format!(
                "{} MSHR entries in snapshot exceed capacity {}",
                entries.len(),
                self.capacity
            )));
        }
        self.entries = entries;
        Ok(())
    }
}
