//! Physical addresses, line addresses, and NUCA bank interleaving.

use std::fmt;

/// Log2 of the 64 B line size.
pub const LINE_SHIFT: u32 = 6;

/// A byte-granular physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A line-granular address (byte address / 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of the line.
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The home NUCA bank under static line interleaving (§3.1: NUCA
    /// banks are interleaved at line granularity so consecutive lines
    /// spread across tiles).
    pub fn home_bank(self, banks: usize) -> usize {
        (self.0 % banks as u64) as usize
    }

    /// The set index within the home bank.
    pub fn bank_set(self, banks: usize, sets: usize) -> usize {
        ((self.0 / banks as u64) % sets as u64) as usize
    }

    /// The tag stored in the bank (bits above the set index).
    pub fn bank_tag(self, banks: usize, sets: usize) -> u64 {
        self.0 / banks as u64 / sets as u64
    }

    /// Set index in a private (non-banked) cache.
    pub fn set(self, sets: usize) -> usize {
        (self.0 % sets as u64) as usize
    }

    /// Tag in a private cache.
    pub fn tag(self, sets: usize) -> u64 {
        self.0 / sets as u64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl disco_snapshot::Snap for LineAddr {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.0);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(LineAddr(r.take()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(LineAddr(1).base(), Addr(64));
    }

    #[test]
    fn interleaving_spreads_lines() {
        let banks = 16;
        let mut seen = vec![0usize; banks];
        for l in 0..64u64 {
            seen[LineAddr(l).home_bank(banks)] += 1;
        }
        assert!(seen.iter().all(|&c| c == 4));
    }

    #[test]
    fn set_tag_roundtrip() {
        let banks = 16;
        let sets = 512;
        for l in [0u64, 17, 12345, 999_999] {
            let la = LineAddr(l);
            let reconstructed = la.bank_tag(banks, sets) * (banks as u64) * (sets as u64)
                + (la.bank_set(banks, sets) as u64) * banks as u64
                + la.home_bank(banks) as u64;
            assert_eq!(reconstructed, l);
        }
    }
}
