#![warn(missing_docs)]

//! Cache hierarchy substrate for the DISCO reproduction (Table 2
//! parameters).
//!
//! - [`l1::L1Cache`] — private 32 KB 4-way write-back L1 data caches.
//! - [`nuca::NucaBank`] — one bank of the shared 4 MB NUCA L2, with
//!   optional compressed *segmented* storage (8 B segments, doubled tag
//!   array) so compression buys effective capacity.
//! - [`mshr::MshrFile`] — outstanding-miss tracking per core.
//! - [`coherence::Directory`] — MOESI directory protocol engine at the
//!   home bank; returns actions the system layer turns into NoC packets.
//! - [`dram::Dram`] — bank-conflict-aware main memory model.
//!
//! This crate owns the *storage and protocol* layer; the full-system
//! orchestration (packets, placements, latencies) lives in `disco-core`.
//!
//! # Example
//!
//! ```
//! use disco_cache::{addr::LineAddr, config::BankConfig, nuca::{NucaBank, StoredLine}};
//! use disco_compress::{scheme::Compressor, CacheLine, Codec};
//!
//! // A compressed bank holds more than `assoc` zero lines per set.
//! let mut bank = NucaBank::new(BankConfig { compressed: true, ..BankConfig::default() }, 0, 16);
//! let codec = Codec::delta();
//! for k in 0..12u64 {
//!     let enc = codec.compress(&CacheLine::zeroed());
//!     bank.insert(LineAddr(k * 16), StoredLine::Compressed(enc), false);
//! }
//! assert_eq!(bank.resident_lines(), 12);
//! ```

pub mod addr;
pub mod coherence;
pub mod config;
pub mod dram;
pub mod l1;
pub mod mshr;
pub mod nuca;
pub mod replacement;

pub use addr::{Addr, LineAddr};
pub use coherence::{CohAction, CoreId, DirState, Directory, StateKind};
pub use config::{BankConfig, DramConfig, L1Config, SEGMENT_BYTES};
pub use dram::Dram;
pub use l1::{L1Cache, L1Stats, Writeback};
pub use mshr::{MshrEntry, MshrFile, MshrOutcome};
pub use nuca::{BankStats, Eviction, NucaBank, StoredLine};
pub use replacement::{ReplState, Replacement, ReplacementPolicy};
