//! Replacement policies for the L1 and the NUCA banks.
//!
//! Table 2 specifies LRU; NRU (not-recently-used, the single-bit
//! approximation real LLCs often ship) and seeded random are provided
//! for sensitivity studies, since compressed caches interact with
//! replacement (a victim frees a variable number of segments).

/// Victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// True least-recently-used (Table 2 default).
    #[default]
    Lru,
    /// Not-recently-used: evict the first line whose reference bit is
    /// clear; clear all bits when every line has been referenced.
    Nru,
    /// Uniform random (deterministic, seeded).
    Random,
}

/// Per-entry replacement state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplState {
    /// Last-touch timestamp (LRU).
    pub last_touch: u64,
    /// Reference bit (NRU).
    pub referenced: bool,
}

/// Replacement bookkeeping for one cache (policy + RNG state).
#[derive(Debug, Clone)]
pub struct ReplacementPolicy {
    policy: Replacement,
    rng: u64,
}

impl ReplacementPolicy {
    /// Creates the policy; `seed` only matters for [`Replacement::Random`].
    pub fn new(policy: Replacement, seed: u64) -> Self {
        ReplacementPolicy {
            policy,
            rng: seed | 1,
        }
    }

    /// Which policy this is.
    pub fn kind(&self) -> Replacement {
        self.policy
    }

    /// Records a touch of an entry.
    pub fn touch(&self, state: &mut ReplState, now: u64) {
        state.last_touch = now;
        state.referenced = true;
    }

    /// Picks the victim among `candidates` (index, state) pairs; entries
    /// excluded from eviction are simply not passed in.
    ///
    /// For NRU, `clear_all` tells the caller to clear every reference bit
    /// after this eviction (the policy saturated).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn victim(&mut self, candidates: &[(usize, ReplState)]) -> (usize, bool) {
        assert!(!candidates.is_empty(), "victim selection needs candidates");
        match self.policy {
            Replacement::Lru => (
                candidates
                    .iter()
                    .min_by_key(|(_, s)| s.last_touch)
                    .map(|&(i, _)| i)
                    .expect("non-empty"),
                false,
            ),
            Replacement::Nru => {
                if let Some(&(i, _)) = candidates.iter().find(|(_, s)| !s.referenced) {
                    (i, false)
                } else {
                    // All referenced: evict the oldest and ask the caller
                    // to clear the bits (one-bit aging epoch).
                    let i = candidates
                        .iter()
                        .min_by_key(|(_, s)| s.last_touch)
                        .map(|&(i, _)| i)
                        .expect("non-empty");
                    (i, true)
                }
            }
            Replacement::Random => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                let pick = (self.rng as usize) % candidates.len();
                (candidates[pick].0, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(touches: &[(u64, bool)]) -> Vec<(usize, ReplState)> {
        touches
            .iter()
            .enumerate()
            .map(|(i, &(t, r))| {
                (
                    i,
                    ReplState {
                        last_touch: t,
                        referenced: r,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn lru_picks_oldest() {
        let mut p = ReplacementPolicy::new(Replacement::Lru, 1);
        let (victim, clear) = p.victim(&states(&[(5, true), (2, true), (9, true)]));
        assert_eq!(victim, 1);
        assert!(!clear);
    }

    #[test]
    fn nru_prefers_unreferenced() {
        let mut p = ReplacementPolicy::new(Replacement::Nru, 1);
        let (victim, clear) = p.victim(&states(&[(5, true), (2, false), (9, true)]));
        assert_eq!(victim, 1);
        assert!(!clear);
    }

    #[test]
    fn nru_saturation_clears_epoch() {
        let mut p = ReplacementPolicy::new(Replacement::Nru, 1);
        let (victim, clear) = p.victim(&states(&[(5, true), (2, true)]));
        assert_eq!(victim, 1, "falls back to oldest");
        assert!(clear, "asks the caller to clear reference bits");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = ReplacementPolicy::new(Replacement::Random, 7);
        let mut b = ReplacementPolicy::new(Replacement::Random, 7);
        let c = states(&[(1, true), (2, true), (3, true), (4, true)]);
        for _ in 0..16 {
            assert_eq!(a.victim(&c).0, b.victim(&c).0);
        }
    }

    #[test]
    fn random_covers_all_candidates() {
        let mut p = ReplacementPolicy::new(Replacement::Random, 3);
        let c = states(&[(1, true), (2, true), (3, true)]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[p.victim(&c).0] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn touch_sets_both_signals() {
        let p = ReplacementPolicy::new(Replacement::Lru, 1);
        let mut s = ReplState::default();
        p.touch(&mut s, 42);
        assert_eq!(s.last_touch, 42);
        assert!(s.referenced);
    }

    #[test]
    #[should_panic(expected = "candidates")]
    fn empty_candidates_panic() {
        let mut p = ReplacementPolicy::new(Replacement::Lru, 1);
        let _ = p.victim(&[]);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for Replacement {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&match self {
            Replacement::Lru => 0u8,
            Replacement::Nru => 1,
            Replacement::Random => 2,
        });
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => Replacement::Lru,
            1 => Replacement::Nru,
            2 => Replacement::Random,
            tag => return Err(disco_snapshot::malformed(format!("Replacement tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(ReplState {
    last_touch,
    referenced,
});

disco_snapshot::snap_fields!(ReplacementPolicy { policy, rng });
