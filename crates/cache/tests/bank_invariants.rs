//! Property tests on the compressed NUCA bank: the segment and tag-slot
//! budgets must hold under any insertion sequence, and evicted addresses
//! must reconstruct exactly.

use disco_cache::addr::LineAddr;
use disco_cache::config::{BankConfig, SEGMENT_BYTES};
use disco_cache::nuca::{NucaBank, StoredLine};
use disco_compress::{scheme::Compressor, CacheLine, Codec};
use proptest::prelude::*;
use std::collections::HashSet;

const BANKS: usize = 4;

fn bank() -> NucaBank {
    NucaBank::new(
        BankConfig {
            capacity_bytes: 4 * 4 * 64,
            assoc: 4,
            hit_latency: 4,
            compressed: true,
            ..BankConfig::default()
        },
        0,
        BANKS,
    )
}

fn stored_for(value: u64) -> StoredLine {
    // Mix compressible and incompressible lines deterministically.
    if value.is_multiple_of(3) {
        let mut bytes = [0u8; 64];
        let mut x = value | 1;
        for b in bytes.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        StoredLine::Raw(CacheLine::from_bytes(bytes))
    } else {
        let codec = Codec::delta();
        StoredLine::Compressed(codec.compress(&CacheLine::from_u64_words([value; 8])))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn budgets_hold_under_any_insertion_sequence(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut bank = bank();
        let config = *bank.config();
        let mut live: HashSet<u64> = HashSet::new();
        for (k, dirty) in ops {
            let addr = LineAddr(k * BANKS as u64); // all map to bank 0
            let evictions = bank.insert(addr, stored_for(k), dirty);
            live.insert(addr.0);
            for ev in &evictions {
                prop_assert!(live.remove(&ev.addr.0), "evicted {} was not live", ev.addr.0);
                prop_assert_ne!(ev.addr.0, addr.0, "never evict the line just inserted");
            }
        }
        // Residency matches the live set exactly.
        prop_assert_eq!(bank.resident_lines(), live.len());
        for &l in &live {
            prop_assert!(bank.contains(LineAddr(l)));
        }
        // Per-set budgets (recomputed through the public API).
        let sets = config.sets();
        for set in 0..sets {
            let mut tags = 0usize;
            let mut segs = 0usize;
            for &l in &live {
                if LineAddr(l).bank_set(BANKS, sets) == set {
                    tags += 1;
                    let (data, _) = bank.clone().invalidate(LineAddr(l)).expect("live line resident");
                    segs += data.segments();
                }
            }
            prop_assert!(tags <= config.tag_slots(), "set {set}: {tags} tags");
            prop_assert!(segs <= config.segments_per_set(), "set {set}: {segs} segments");
        }
    }

    #[test]
    fn lookup_returns_what_was_inserted(values in proptest::collection::vec(0u64..32, 1..40)) {
        let mut bank = bank();
        for &v in &values {
            bank.insert(LineAddr(v * BANKS as u64), stored_for(v), false);
        }
        // The most recently inserted line is always resident (never the
        // eviction victim) and reads back identical.
        let last = *values.last().expect("non-empty");
        let got = bank.lookup(LineAddr(last * BANKS as u64)).expect("just inserted").clone();
        prop_assert_eq!(got, stored_for(last));
    }

    #[test]
    fn stored_size_is_segment_quantized(v in any::<u64>()) {
        let s = stored_for(v);
        prop_assert_eq!(s.size_bytes() % SEGMENT_BYTES, 0);
        prop_assert!(s.segments() >= 1 && s.segments() <= 8);
    }
}

#[test]
fn compressed_bank_doubles_zero_line_capacity() {
    let mut bank = bank();
    let codec = Codec::delta();
    // 1-segment lines: tag slots (8/set here) bound the count.
    let mut inserted = 0;
    for k in 0..64u64 {
        let enc = codec.compress(&CacheLine::zeroed());
        let ev = bank.insert(
            LineAddr(k * BANKS as u64),
            StoredLine::Compressed(enc),
            false,
        );
        inserted += 1;
        if !ev.is_empty() {
            break;
        }
    }
    // 4 sets x 2*4 tag slots = 32 lines before any eviction.
    assert!(
        inserted > 16,
        "compressed mode must beat the 16-line raw capacity, got {inserted}"
    );
}
