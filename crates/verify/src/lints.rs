//! Source-convention lints: a lightweight file-walk scanner with no
//! dependencies beyond `std`.
//!
//! Two rules:
//!
//! 1. **Panic-free hot paths** — the files executed every simulated cycle
//!    must not call `.unwrap()` or `.expect(...)`. Recoverable conditions
//!    must use `Option`/`Result` flow; genuine simulator invariants must
//!    use `assert!`/`panic!` with a message naming the violated
//!    invariant. Comment lines are skipped and scanning stops at the
//!    first `#[cfg(test)]` module, where panicking is idiomatic.
//! 2. **Stats surfacing** — every public counter field of
//!    `NetworkStats` and `DiscoStats` must appear in `report.rs`, so no
//!    measurement silently drops out of the stats file the experiments
//!    diff.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Files whose per-cycle code must stay panic-API free.
pub const HOT_PATHS: &[&str] = &[
    "crates/noc/src/router.rs",
    "crates/noc/src/network.rs",
    "crates/noc/src/routing.rs",
    "crates/noc/src/packet.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/arbitrator.rs",
    "crates/cache/src/nuca.rs",
    "crates/cache/src/l1.rs",
    "crates/cache/src/mshr.rs",
];

/// The counter structs whose fields must be surfaced, and where they live.
const STATS_SOURCES: &[(&str, &str)] = &[
    ("crates/noc/src/stats.rs", "NetworkStats"),
    ("crates/core/src/engine.rs", "DiscoStats"),
];

/// Where the counters must be surfaced.
const REPORT_PATH: &str = "crates/core/src/report.rs";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in, relative to the repository root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

/// Scans every hot-path file for panicking-API calls.
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn scan_hot_paths(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for rel in HOT_PATHS {
        let text = fs::read_to_string(root.join(rel))?;
        for (line, message) in scan_source(&text) {
            violations.push(Violation {
                file: PathBuf::from(rel),
                line,
                message,
            });
        }
    }
    Ok(violations)
}

/// Scans one source text; returns (1-based line, message) findings.
/// Stops at the first `#[cfg(test)]` and skips comment lines and
/// trailing line comments (string literals containing `//` are rare
/// enough in this codebase that the naive split is acceptable).
pub fn scan_source(text: &str) -> Vec<(usize, String)> {
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = raw.split("//").next().unwrap_or(raw);
        for pattern in [".unwrap()", ".expect("] {
            if code.contains(pattern) {
                findings.push((
                    idx + 1,
                    format!("`{pattern}` in a per-cycle hot path; use Option/Result flow or an assert naming the invariant"),
                ));
            }
        }
    }
    findings
}

/// Checks that every public counter field of the stats structs appears in
/// `report.rs`.
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_stats_surfaced(root: &Path) -> io::Result<Vec<Violation>> {
    let report = fs::read_to_string(root.join(REPORT_PATH))?;
    let mut violations = Vec::new();
    for (rel, struct_name) in STATS_SOURCES {
        let src = fs::read_to_string(root.join(rel))?;
        let fields = struct_fields(&src, struct_name);
        if fields.is_empty() {
            violations.push(Violation {
                file: PathBuf::from(rel),
                line: 1,
                message: format!("struct {struct_name} not found"),
            });
            continue;
        }
        for (line, field) in fields {
            if !report.contains(&field) {
                violations.push(Violation {
                    file: PathBuf::from(rel),
                    line,
                    message: format!("{struct_name}.{field} is not surfaced in {REPORT_PATH}"),
                });
            }
        }
    }
    Ok(violations)
}

/// Public field names of `name` in `src`, with their 1-based lines.
fn struct_fields(src: &str, name: &str) -> Vec<(usize, String)> {
    let header = format!("pub struct {name} {{");
    let mut fields = Vec::new();
    let mut inside = false;
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if !inside {
            inside = trimmed.starts_with(&header);
            continue;
        }
        if trimmed.starts_with('}') {
            break;
        }
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            if let Some((field, _ty)) = rest.split_once(':') {
                fields.push((idx + 1, field.trim().to_string()));
            }
        }
    }
    fields
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/verify` → two levels up).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_paths_are_clean() {
        let violations = scan_hot_paths(&repo_root()).expect("sources readable");
        assert_eq!(violations, Vec::new(), "hot paths must stay panic-API free");
    }

    #[test]
    fn stats_are_surfaced() {
        let violations = check_stats_surfaced(&repo_root()).expect("sources readable");
        assert_eq!(violations, Vec::new(), "every counter must reach report.rs");
    }

    #[test]
    fn scanner_flags_code_but_not_comments_or_tests() {
        let text = "\
fn hot() {\n\
    let x = maybe().unwrap();\n\
    // a comment mentioning .unwrap() is fine\n\
    let y = other(); // trailing .expect( mention is fine\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let z = maybe().expect(\"fine in tests\"); }\n\
}\n";
        let findings = scan_source(text);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, 2);
    }

    #[test]
    fn scanner_catches_expect() {
        let findings = scan_source("fn f() { g().expect(\"boom\"); }\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn field_extraction_reads_pub_fields() {
        let src = "\
/// Doc.\n\
pub struct FooStats {\n\
    /// A counter.\n\
    pub alpha: u64,\n\
    /// Another.\n\
    pub beta_by_class: [u64; 3],\n\
    hidden: u64,\n\
}\n";
        let fields: Vec<String> = struct_fields(src, "FooStats")
            .into_iter()
            .map(|f| f.1)
            .collect();
        assert_eq!(
            fields,
            vec!["alpha".to_string(), "beta_by_class".to_string()]
        );
    }
}
