//! Source-convention lints: a lightweight file-walk scanner with no
//! dependencies beyond `std`.
//!
//! Five rules:
//!
//! 1. **Panic-free hot paths** — the files executed every simulated cycle
//!    must not call `.unwrap()` or `.expect(...)`. Recoverable conditions
//!    must use `Option`/`Result` flow; genuine simulator invariants must
//!    use `assert!`/`panic!` with a message naming the violated
//!    invariant. Comment lines are skipped and scanning stops at the
//!    first `#[cfg(test)]` module, where panicking is idiomatic.
//! 2. **Stats surfacing** — every public counter field of
//!    `NetworkStats`, `DiscoStats`, and `ProvenanceTotals` must appear in
//!    `report.rs`, so no measurement silently drops out of the stats file
//!    the experiments diff.
//! 3. **Commit confinement** — the phase-split cycle kernel keeps its
//!    determinism guarantee only if every `Router` field write happens in
//!    the node-ordered commit pass. No file in `crates/noc/src` other
//!    than `commit.rs` (and `router.rs` itself) may mutate a router's
//!    `inputs`, `out_alloc`, `credits`, `rr_sa`, or `sa_losers` directly.
//! 4. **No wall-clock in the trace path** — trace records are stamped
//!    with the simulated cycle, never host time, or the export stops
//!    being byte-identical across shard counts and reruns. Nothing under
//!    `crates/trace/src` and no emission-site file may mention
//!    `std::time`, `Instant`, or `SystemTime`.
//! 5. **Fault-kind coverage** — every `FaultKind` variant declared in
//!    `crates/faults/src/lib.rs` must have at least one injection site
//!    (a `FaultKind::<Variant>` reference in non-test simulator code
//!    outside the faults crate) and at least one test exercising it
//!    (the variant or its `<snake_case>_rate` knob referenced inside a
//!    `#[cfg(test)]` region or a `tests/` integration file). A variant
//!    that can never fire, or fires without a test pinning its
//!    behaviour, is dead weight in the fault model.
//! 6. **Exhaustive snapshot manifest** — every field of every struct
//!    that participates in `System::snapshot` must be accounted for in
//!    `crates/snapshot/manifest.txt` as either `state` (serialized) or
//!    `derived` (rebuilt from config on restore). Adding a field
//!    without deciding its checkpoint treatment silently produces
//!    snapshots that resume into a different simulation; this lint
//!    turns that into a build failure.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::ast;

/// Files whose per-cycle code must stay panic-API free.
pub const HOT_PATHS: &[&str] = &[
    "crates/noc/src/topology.rs",
    "crates/noc/src/router.rs",
    "crates/noc/src/network.rs",
    "crates/noc/src/phase.rs",
    "crates/noc/src/pool.rs",
    "crates/noc/src/commit.rs",
    "crates/noc/src/routing.rs",
    "crates/noc/src/packet.rs",
    "crates/noc/src/faults.rs",
    "crates/faults/src/lib.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/arbitrator.rs",
    "crates/cache/src/nuca.rs",
    "crates/cache/src/l1.rs",
    "crates/cache/src/mshr.rs",
    "crates/cache/src/dram.rs",
    "crates/trace/src/event.rs",
    "crates/trace/src/ring.rs",
    "crates/trace/src/provenance.rs",
];

/// `Router` fields only the commit pass may write. The compute phase
/// reads them through snapshots; everything else goes through `Router`
/// methods.
const ROUTER_FIELDS: &[&str] = &["inputs", "out_alloc", "credits", "rr_sa", "sa_losers"];

/// Method calls that mutate a field's container in place.
const MUTATING_CALLS: &[&str] = &[
    ".push(",
    ".pop_front(",
    ".pop_back(",
    ".clear(",
    ".extend(",
    ".extend_from_slice(",
    ".insert(",
    ".remove(",
    ".drain(",
    ".truncate(",
    ".swap(",
    ".fill(",
];

/// The counter structs whose fields must be surfaced, and where they live.
const STATS_SOURCES: &[(&str, &str)] = &[
    ("crates/noc/src/stats.rs", "NetworkStats"),
    ("crates/core/src/engine.rs", "DiscoStats"),
    ("crates/trace/src/provenance.rs", "ProvenanceTotals"),
    ("crates/faults/src/lib.rs", "FaultStats"),
    ("crates/energy/src/model.rs", "EnergyCounts"),
    ("crates/energy/src/model.rs", "EnergyBreakdown"),
];

/// Where the counters must be surfaced.
const REPORT_PATH: &str = "crates/core/src/report.rs";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in, relative to the repository root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

/// Scans every hot-path file for panicking-API calls.
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn scan_hot_paths(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for rel in HOT_PATHS {
        let text = fs::read_to_string(root.join(rel))?;
        for (line, message) in scan_source(&text) {
            violations.push(Violation {
                file: PathBuf::from(rel),
                line,
                message,
            });
        }
    }
    Ok(violations)
}

/// Scans one source text; returns (1-based line, message) findings.
/// Stops at the first `#[cfg(test)]` and skips comment lines and
/// trailing line comments (string literals containing `//` are rare
/// enough in this codebase that the naive split is acceptable).
pub fn scan_source(text: &str) -> Vec<(usize, String)> {
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = raw.split("//").next().unwrap_or(raw);
        for pattern in [".unwrap()", ".expect("] {
            if code.contains(pattern) {
                findings.push((
                    idx + 1,
                    format!("`{pattern}` in a per-cycle hot path; use Option/Result flow or an assert naming the invariant"),
                ));
            }
        }
    }
    findings
}

/// Scans `crates/noc/src` for `Router` field mutations outside the
/// commit module (rule 3).
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_commit_confinement(root: &Path) -> io::Result<Vec<Violation>> {
    let dir = Path::new("crates/noc/src");
    let mut names: Vec<String> = fs::read_dir(root.join(dir))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".rs") && n != "router.rs" && n != "commit.rs")
        .collect();
    names.sort();
    let mut violations = Vec::new();
    for name in names {
        let rel = dir.join(&name);
        let text = fs::read_to_string(root.join(&rel))?;
        for (line, message) in scan_confinement(&text) {
            violations.push(Violation {
                file: rel.clone(),
                line,
                message,
            });
        }
    }
    Ok(violations)
}

/// Scans one source text for `Router` field writes; returns (1-based
/// line, message) findings. A write is a field access whose receiver is
/// a `router`/`routers[...]` binding followed by an assignment operator
/// or an in-place mutating call. Comment handling and the `#[cfg(test)]`
/// cutoff match [`scan_source`].
pub fn scan_confinement(text: &str) -> Vec<(usize, String)> {
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = raw.split("//").next().unwrap_or(raw);
        for field in ROUTER_FIELDS {
            let needle = format!(".{field}");
            let mut search = 0;
            while let Some(pos) = code[search..].find(&needle) {
                let start = search + pos;
                let end = start + needle.len();
                search = end;
                // Token boundary: `.rr_sa` must not match `.rr_sample`.
                if code[end..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                if !receiver_is_router(&code[..start]) {
                    continue;
                }
                if is_mutated(&code[end..]) {
                    findings.push((
                        idx + 1,
                        format!(
                            "Router field `{field}` mutated outside the commit pass; \
                             route the write through crates/noc/src/commit.rs"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Whether the expression ending just before a field access is a
/// `router` binding or an element of a `routers` collection (skipping
/// back over balanced index brackets, e.g. `self.routers[i]`).
fn receiver_is_router(before: &str) -> bool {
    let bytes = before.as_bytes();
    let mut i = before.len();
    while i > 0 && bytes[i - 1] == b']' {
        let mut depth = 0usize;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    matches!(&before[i..end], "router" | "routers")
}

/// Whether the rest of a line after a field access writes to it: an
/// in-place mutating call anywhere downstream, or an assignment operator
/// (`=`, `+=`, …) that is not part of a comparison, `=>`, or `..=`.
fn is_mutated(rest: &str) -> bool {
    if MUTATING_CALLS.iter().any(|p| rest.contains(p)) {
        return true;
    }
    let bytes = rest.as_bytes();
    for (j, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = j.checked_sub(1).map(|k| bytes[k]);
        let next = bytes.get(j + 1);
        if matches!(prev, Some(b'=' | b'!' | b'<' | b'>' | b'.')) {
            continue; // ==, !=, <=, >=, ..=  (or second char of ==)
        }
        if next == Some(&b'=') || next == Some(&b'>') {
            continue; // first char of ==, or =>
        }
        return true; // plain or compound assignment
    }
    false
}

/// Emission-site files that must never read wall-clock time (rule 4).
/// Every `.rs` file under `crates/trace/src` is additionally walked.
/// (`crates/bench`'s harnesses legitimately use `Instant` for wall-clock
/// throughput measurement and are deliberately out of scope.)
pub const WALLCLOCK_FREE: &[&str] = &[
    "crates/noc/src/phase.rs",
    "crates/noc/src/pool.rs",
    "crates/noc/src/commit.rs",
    "crates/noc/src/network.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/system.rs",
    "crates/cache/src/nuca.rs",
    "crates/cache/src/dram.rs",
];

/// Host-time sources forbidden in deterministic tracing code.
const WALLCLOCK_PATTERNS: &[&str] = &["std::time", "Instant", "SystemTime"];

/// Scans the trace crate and every emission site for wall-clock time
/// sources (rule 4).
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_no_wallclock(root: &Path) -> io::Result<Vec<Violation>> {
    let mut rels: Vec<PathBuf> = WALLCLOCK_FREE.iter().map(PathBuf::from).collect();
    let trace_dir = Path::new("crates/trace/src");
    let mut names: Vec<String> = fs::read_dir(root.join(trace_dir))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    rels.extend(names.into_iter().map(|n| trace_dir.join(n)));
    let mut violations = Vec::new();
    for rel in rels {
        let text = fs::read_to_string(root.join(&rel))?;
        for (line, message) in scan_wallclock(&text) {
            violations.push(Violation {
                file: rel.clone(),
                line,
                message,
            });
        }
    }
    Ok(violations)
}

/// Scans one source text for wall-clock time sources; returns (1-based
/// line, message) findings. Comment handling and the `#[cfg(test)]`
/// cutoff match [`scan_source`].
pub fn scan_wallclock(text: &str) -> Vec<(usize, String)> {
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = raw.split("//").next().unwrap_or(raw);
        for pattern in WALLCLOCK_PATTERNS {
            if code.contains(pattern) {
                findings.push((
                    idx + 1,
                    format!(
                        "wall-clock source `{pattern}` in deterministic tracing code; \
                         stamp with the simulated cycle instead"
                    ),
                ));
            }
        }
    }
    findings
}

/// Checks that every public counter field of the stats structs appears in
/// `report.rs`.
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_stats_surfaced(root: &Path) -> io::Result<Vec<Violation>> {
    let report = fs::read_to_string(root.join(REPORT_PATH))?;
    let mut violations = Vec::new();
    for (rel, struct_name) in STATS_SOURCES {
        let src = fs::read_to_string(root.join(rel))?;
        let fields = struct_fields(&src, struct_name);
        if fields.is_empty() {
            violations.push(Violation {
                file: PathBuf::from(rel),
                line: 1,
                message: format!("struct {struct_name} not found"),
            });
            continue;
        }
        for (line, field) in fields {
            if !report.contains(&field) {
                violations.push(Violation {
                    file: PathBuf::from(rel),
                    line,
                    message: format!("{struct_name}.{field} is not surfaced in {REPORT_PATH}"),
                });
            }
        }
    }
    Ok(violations)
}

/// Where the DSE design space declares its axes.
const PARETO_SPACE_PATH: &str = "crates/pareto/src/space.rs";
/// Where the DSE driver renders the frontier JSON.
const PARETO_DRIVER_PATH: &str = "crates/pareto/src/driver.rs";

/// Checks that every declared axis of the design space — every public
/// field of `DesignSpace` — appears by name as a key in the frontier
/// JSON the driver renders (rule: an axis the output schema omits is an
/// axis nobody can audit the exploration over).
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_pareto_axes(root: &Path) -> io::Result<Vec<Violation>> {
    let space = fs::read_to_string(root.join(PARETO_SPACE_PATH))?;
    let driver = fs::read_to_string(root.join(PARETO_DRIVER_PATH))?;
    Ok(scan_pareto_axes(&space, &driver)
        .into_iter()
        .map(|(line, message)| Violation {
            file: PathBuf::from(PARETO_SPACE_PATH),
            line,
            message,
        })
        .collect())
}

/// Core of [`check_pareto_axes`] over source texts: every `pub` field
/// of `DesignSpace` in `space_src` must appear as an escaped JSON key
/// (`\"name\"`) in `driver_src`. Returns (1-based line in `space_src`,
/// message) findings.
pub fn scan_pareto_axes(space_src: &str, driver_src: &str) -> Vec<(usize, String)> {
    let axes = struct_fields(space_src, "DesignSpace");
    if axes.is_empty() {
        return vec![(1, "struct DesignSpace not found".to_string())];
    }
    let mut findings = Vec::new();
    for (line, axis) in axes {
        let key = format!("\\\"{axis}\\\"");
        if !driver_src.contains(&key) {
            findings.push((
                line,
                format!(
                    "DesignSpace.{axis} is not rendered as a `{key}` key in the \
                     frontier JSON ({PARETO_DRIVER_PATH})"
                ),
            ));
        }
    }
    findings
}

/// Where `FaultKind` is declared.
const FAULT_KIND_PATH: &str = "crates/faults/src/lib.rs";

/// Checks that every `FaultKind` variant has an injection site in
/// non-test simulator code and a test exercising it (rule 5).
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_fault_kind_coverage(root: &Path) -> io::Result<Vec<Violation>> {
    let decl = fs::read_to_string(root.join(FAULT_KIND_PATH))?;
    let variants = enum_variants(&decl, "FaultKind");
    if variants.is_empty() {
        return Ok(vec![Violation {
            file: PathBuf::from(FAULT_KIND_PATH),
            line: 1,
            message: "enum FaultKind not found".to_string(),
        }]);
    }
    // Split every simulator source into its non-test and test regions.
    let mut non_test = String::new();
    let mut test = String::new();
    for rel in rust_sources(root)? {
        // The declaring crate defines the variants; its non-test code is
        // not an injection site. Its tests still count.
        let is_decl = rel == Path::new(FAULT_KIND_PATH);
        let is_integration = rel.starts_with("tests");
        let text = fs::read_to_string(root.join(&rel))?;
        let mut in_tests = is_integration;
        for raw in text.lines() {
            let trimmed = raw.trim_start();
            if trimmed.starts_with("#[cfg(test)]") {
                in_tests = true;
            }
            if trimmed.starts_with("//") {
                continue;
            }
            let code = raw.split("//").next().unwrap_or(raw);
            if in_tests {
                test.push_str(code);
                test.push('\n');
            } else if !is_decl {
                non_test.push_str(code);
                non_test.push('\n');
            }
        }
    }
    let mut violations = Vec::new();
    for (line, variant) in variants {
        let reference = format!("FaultKind::{variant}");
        if !non_test.contains(&reference) {
            violations.push(Violation {
                file: PathBuf::from(FAULT_KIND_PATH),
                line,
                message: format!(
                    "FaultKind::{variant} has no injection site (no reference in \
                     non-test simulator code)"
                ),
            });
        }
        let knob = format!("{}_rate", camel_to_snake(&variant));
        if !test.contains(&reference) && !test.contains(&knob) {
            violations.push(Violation {
                file: PathBuf::from(FAULT_KIND_PATH),
                line,
                message: format!(
                    "FaultKind::{variant} has no test (neither the variant nor \
                     `{knob}` appears in test code)"
                ),
            });
        }
    }
    Ok(violations)
}

/// Variant names of `pub enum name` in `src`, with their 1-based lines.
fn enum_variants(src: &str, name: &str) -> Vec<(usize, String)> {
    let header = format!("pub enum {name} {{");
    let mut variants = Vec::new();
    let mut inside = false;
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if !inside {
            inside = trimmed.starts_with(&header);
            continue;
        }
        if trimmed.starts_with('}') {
            break;
        }
        let first = trimmed.split([' ', '=', ',', '(']).next().unwrap_or("");
        if !first.is_empty() && first.chars().next().is_some_and(char::is_uppercase) {
            variants.push((idx + 1, first.to_string()));
        }
    }
    variants
}

/// `CamelCase` → `snake_case` (for rate-knob needle derivation).
fn camel_to_snake(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Every `.rs` file under `crates/*/src` and `tests/`, sorted for
/// deterministic scan order.
fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut rels = Vec::new();
    for entry in fs::read_dir(root.join("crates"))? {
        let entry = entry?;
        let src = entry.path().join("src");
        if !src.is_dir() {
            continue;
        }
        collect_rs(&src, root, &mut rels)?;
    }
    let tests = root.join("tests");
    if tests.is_dir() {
        collect_rs(&tests, root, &mut rels)?;
    }
    rels.sort();
    Ok(rels)
}

/// Recursively collects `.rs` files under `dir` as root-relative paths.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Public field names of `name` in `src`, with their 1-based lines.
fn struct_fields(src: &str, name: &str) -> Vec<(usize, String)> {
    let header = format!("pub struct {name} {{");
    let mut fields = Vec::new();
    let mut inside = false;
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if !inside {
            inside = trimmed.starts_with(&header);
            continue;
        }
        if trimmed.starts_with('}') {
            break;
        }
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            if let Some((field, _ty)) = rest.split_once(':') {
                fields.push((idx + 1, field.trim().to_string()));
            }
        }
    }
    fields
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/verify` → two levels up).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// AST-grade variants. The string scanners above are kept as regression
// baselines (tests/verify_mutations.rs demonstrates the defects they
// miss); `cargo xtask verify` runs the versions below, which operate on
// parsed token trees (crate::ast) and therefore see through helper
// methods, `#[cfg]`-hidden branches, and code placed after a
// `#[cfg(test)]` module.
// ---------------------------------------------------------------------------

/// Files whose code runs in the serial (single-threaded) part of the
/// cycle: the commit pass itself, the network driver that calls it, and
/// the serial fault injector. These may call `&mut self` `Router`
/// methods; everything else in `crates/noc/src` — above all the compute
/// phase — must not even borrow a router mutably.
pub const SERIAL_CONTEXT: &[&str] = &[
    "crates/noc/src/router.rs",
    "crates/noc/src/commit.rs",
    "crates/noc/src/network.rs",
    "crates/noc/src/faults.rs",
];

/// Where the compute phase (and its purity contract) lives.
const COMPUTE_PHASE_PATH: &str = "crates/noc/src/phase.rs";

/// Where `Router` and its `&mut self` mutator methods are declared.
const ROUTER_PATH: &str = "crates/noc/src/router.rs";

/// Wraps a parse failure as a reportable violation so a syntax-level
/// regression in a scanned file fails the lint pass instead of crashing
/// it.
fn parse_failure(rel: &Path, err: String) -> Violation {
    Violation {
        file: rel.to_path_buf(),
        line: 1,
        message: format!("AST lint could not parse file: {err}"),
    }
}

/// AST-grade panic-free hot-path scan: [`scan_hot_paths`] on parsed
/// token trees. Unlike the string scan it keeps going after a
/// `#[cfg(test)]` module (skipping only the test items themselves), so
/// per-cycle code hidden behind `#[cfg(feature = …)]` or placed below a
/// test module is still checked.
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn scan_hot_paths_ast(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for rel in HOT_PATHS {
        let rel = Path::new(rel);
        let text = fs::read_to_string(root.join(rel))?;
        match ast::scan_panics(&text) {
            Ok(findings) => {
                violations.extend(findings.into_iter().map(|(line, message)| Violation {
                    file: rel.to_path_buf(),
                    line,
                    message,
                }))
            }
            Err(e) => violations.push(parse_failure(rel, e)),
        }
    }
    Ok(violations)
}

/// AST-grade commit-confinement check. Extracts the `&mut self` method
/// set from the live `Router` impl, then scans every file in
/// `crates/noc/src` except `router.rs`/`commit.rs`:
///
/// - direct `Router` field writes are flagged everywhere (as before,
///   but now including `#[cfg]`-hidden branches and code after test
///   modules);
/// - calls to `&mut self` `Router` methods and `&mut` borrows of router
///   bindings are additionally flagged outside [`SERIAL_CONTEXT`] —
///   this closes the helper-method blind spot of [`scan_confinement`],
///   which only sees spelled-out field assignments.
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_commit_confinement_ast(root: &Path) -> io::Result<Vec<Violation>> {
    let router_src = fs::read_to_string(root.join(ROUTER_PATH))?;
    let mut_methods = match ast::router_mut_methods(&router_src) {
        Ok(m) => m,
        Err(e) => return Ok(vec![parse_failure(Path::new(ROUTER_PATH), e)]),
    };
    let dir = Path::new("crates/noc/src");
    let mut names: Vec<String> = fs::read_dir(root.join(dir))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".rs") && n != "router.rs" && n != "commit.rs")
        .collect();
    names.sort();
    let mut violations = Vec::new();
    for name in names {
        let rel = dir.join(&name);
        let serial = SERIAL_CONTEXT.iter().any(|s| Path::new(s) == rel);
        let rules = ast::ConfinementRules {
            direct_writes: true,
            method_calls: !serial,
        };
        let text = fs::read_to_string(root.join(&rel))?;
        match ast::scan_confinement(&text, ROUTER_FIELDS, &mut_methods, rules) {
            Ok(findings) => {
                violations.extend(findings.into_iter().map(|(line, message)| Violation {
                    file: rel.clone(),
                    line,
                    message,
                }))
            }
            Err(e) => violations.push(parse_failure(&rel, e)),
        }
    }
    Ok(violations)
}

/// AST-grade wall-clock check over the same file set as
/// [`check_no_wallclock`], using identifier tokens instead of substring
/// matches (so a struct field named `instant_rate` no longer trips it,
/// while `std::time::Instant` behind `#[cfg(feature = …)]` does).
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_no_wallclock_ast(root: &Path) -> io::Result<Vec<Violation>> {
    let mut rels: Vec<PathBuf> = WALLCLOCK_FREE.iter().map(PathBuf::from).collect();
    let trace_dir = Path::new("crates/trace/src");
    let mut names: Vec<String> = fs::read_dir(root.join(trace_dir))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    rels.extend(names.into_iter().map(|n| trace_dir.join(n)));
    let mut violations = Vec::new();
    for rel in rels {
        let text = fs::read_to_string(root.join(&rel))?;
        match ast::scan_wallclock(&text) {
            Ok(findings) => {
                violations.extend(findings.into_iter().map(|(line, message)| Violation {
                    file: rel.clone(),
                    line,
                    message,
                }))
            }
            Err(e) => violations.push(parse_failure(&rel, e)),
        }
    }
    Ok(violations)
}

/// Compute-phase purity check: `crates/noc/src/phase.rs` must keep the
/// `compute_router(router: &Router, …)` shared-reference signature the
/// determinism argument rests on, and must not smuggle writes through
/// interior mutability (`RefCell`, `Cell`, `Mutex`, atomics, …).
///
/// # Errors
///
/// Propagates I/O errors reading the sources under `root`.
pub fn check_compute_purity(root: &Path) -> io::Result<Vec<Violation>> {
    let rel = Path::new(COMPUTE_PHASE_PATH);
    let text = fs::read_to_string(root.join(rel))?;
    let findings = match ast::scan_compute_purity(&text, true) {
        Ok(f) => f,
        Err(e) => return Ok(vec![parse_failure(rel, e)]),
    };
    Ok(findings
        .into_iter()
        .map(|(line, message)| Violation {
            file: rel.to_path_buf(),
            line,
            message,
        })
        .collect())
}

/// The `&mut self` method names of the live `Router`, for callers that
/// want to reuse the extracted set (xtask reporting, tests).
///
/// # Errors
///
/// Propagates I/O errors reading `router.rs` under `root`; a parse
/// failure is reported as `io::ErrorKind::InvalidData`.
pub fn live_router_mut_methods(root: &Path) -> io::Result<BTreeSet<String>> {
    let src = fs::read_to_string(root.join(ROUTER_PATH))?;
    ast::router_mut_methods(&src).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

// ---------------------------------------------------------------------------
// Rule 6: exhaustive snapshot field manifest
// ---------------------------------------------------------------------------

/// Where the snapshot field manifest lives.
pub const SNAPSHOT_MANIFEST_PATH: &str = "crates/snapshot/manifest.txt";

/// One `struct <file> <Name>` block of the snapshot manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Source file, relative to the repository root.
    pub file: String,
    /// Struct name.
    pub name: String,
    /// Declared fields, in manifest order, with their disposition
    /// (`"state"` or `"derived"`).
    pub fields: Vec<(String, String)>,
    /// 1-based manifest line of the `struct` header.
    pub line: usize,
}

/// Parses the manifest format: `struct <relative-path> <StructName>`
/// headers, one `<field> state|derived` line per field, `#` comments.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_snapshot_manifest(text: &str) -> Result<Vec<ManifestEntry>, String> {
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().unwrap_or_default();
        if first == "struct" {
            let (file, name) = (parts.next(), parts.next());
            match (file, name, parts.next()) {
                (Some(file), Some(name), None) => entries.push(ManifestEntry {
                    file: file.to_string(),
                    name: name.to_string(),
                    fields: Vec::new(),
                    line: idx + 1,
                }),
                _ => {
                    return Err(format!(
                        "manifest line {}: expected `struct <file> <Name>`",
                        idx + 1
                    ))
                }
            }
            continue;
        }
        let disposition = parts.next();
        match (entries.last_mut(), disposition, parts.next()) {
            (Some(entry), Some(d @ ("state" | "derived")), None) => {
                entry.fields.push((first.to_string(), d.to_string()));
            }
            (None, _, _) => {
                return Err(format!(
                    "manifest line {}: field before any `struct` header",
                    idx + 1
                ))
            }
            _ => {
                return Err(format!(
                    "manifest line {}: expected `<field> state|derived`",
                    idx + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Every field of struct `name` in `src` — private ones included, which
/// is what distinguishes this from the rule-2 `struct_fields` scan —
/// with 1-based lines. Attribute lines (`#[cfg(...)]` etc.) and
/// comments are skipped; a field line is `[pub[(crate)]] name: Type,`.
pub fn all_struct_fields(src: &str, name: &str) -> Vec<(usize, String)> {
    let headers = [
        format!("pub struct {name} {{"),
        format!("pub(crate) struct {name} {{"),
        format!("struct {name} {{"),
    ];
    let mut fields = Vec::new();
    let mut inside = false;
    for (idx, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        if !inside {
            inside = headers.iter().any(|h| trimmed.starts_with(h.as_str()));
            continue;
        }
        if trimmed.starts_with('}') {
            break;
        }
        if trimmed.starts_with("//") || trimmed.starts_with("#[") {
            continue;
        }
        let rest = trimmed
            .strip_prefix("pub(crate) ")
            .or_else(|| trimmed.strip_prefix("pub "))
            .unwrap_or(trimmed);
        if let Some((field, after)) = rest.split_once(':') {
            let field = field.trim();
            // `::` is a path inside a wrapped type, not a field; a real
            // field name is a lone identifier.
            if !after.starts_with(':')
                && !field.is_empty()
                && field.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                fields.push((idx + 1, field.to_string()));
            }
        }
    }
    fields
}

/// Pure core of rule 6: diffs one manifest entry against the struct
/// body found in `src`. Returns (line, message) findings — fields the
/// struct has but the manifest does not (the dangerous direction: an
/// undeclared field is an unserialized field), and stale manifest
/// entries for fields the struct no longer has.
pub fn scan_snapshot_struct(entry: &ManifestEntry, src: &str) -> Vec<(usize, String)> {
    let actual = all_struct_fields(src, &entry.name);
    if actual.is_empty() {
        return vec![(
            entry.line,
            format!("struct {} not found in {}", entry.name, entry.file),
        )];
    }
    let mut findings = Vec::new();
    for (line, field) in &actual {
        if !entry.fields.iter().any(|(f, _)| f == field) {
            findings.push((
                *line,
                format!(
                    "{}.{field} is not in {SNAPSHOT_MANIFEST_PATH} — serialize it and \
                     declare it `state`, or justify it as `derived`",
                    entry.name
                ),
            ));
        }
    }
    for (field, _) in &entry.fields {
        if !actual.iter().any(|(_, f)| f == field) {
            findings.push((
                entry.line,
                format!(
                    "manifest declares {}.{field} but the struct has no such field \
                     (stale entry)",
                    entry.name
                ),
            ));
        }
    }
    findings
}

/// Checks the snapshot manifest against the live struct bodies (rule 6).
///
/// # Errors
///
/// Propagates I/O errors reading the manifest or the listed sources; a
/// malformed manifest is reported as `io::ErrorKind::InvalidData`.
pub fn check_snapshot_manifest(root: &Path) -> io::Result<Vec<Violation>> {
    let text = fs::read_to_string(root.join(SNAPSHOT_MANIFEST_PATH))?;
    let entries = parse_snapshot_manifest(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if entries.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot manifest lists no structs",
        ));
    }
    let mut violations = Vec::new();
    for entry in &entries {
        let src = fs::read_to_string(root.join(&entry.file))?;
        for (line, message) in scan_snapshot_struct(entry, &src) {
            violations.push(Violation {
                file: PathBuf::from(&entry.file),
                line,
                message,
            });
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_paths_are_clean() {
        let violations = scan_hot_paths(&repo_root()).expect("sources readable");
        assert_eq!(violations, Vec::new(), "hot paths must stay panic-API free");
    }

    #[test]
    fn stats_are_surfaced() {
        let violations = check_stats_surfaced(&repo_root()).expect("sources readable");
        assert_eq!(violations, Vec::new(), "every counter must reach report.rs");
    }

    #[test]
    fn trace_path_is_wallclock_free() {
        let violations = check_no_wallclock(&repo_root()).expect("sources readable");
        assert_eq!(
            violations,
            Vec::new(),
            "trace records must be cycle-stamped, never wall-clock-stamped"
        );
    }

    #[test]
    fn wallclock_scanner_flags_code_but_not_comments_or_tests() {
        let text = "\
fn bad() { let t = std::time::Instant::now(); }\n\
// a comment mentioning Instant is fine\n\
fn ok() { let c = self.cycle; } // trailing SystemTime mention is fine\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let _ = std::time::SystemTime::now(); }\n\
}\n";
        let findings = scan_wallclock(text);
        // Line 1 matches both `std::time` and `Instant`.
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.0 == 1));
    }

    #[test]
    fn noc_commit_confinement_holds() {
        let violations = check_commit_confinement(&repo_root()).expect("sources readable");
        assert_eq!(
            violations,
            Vec::new(),
            "Router fields may only be written by the commit pass"
        );
    }

    #[test]
    fn confinement_flags_writes_but_not_reads() {
        let text = "\
fn compute(router: &Router, routers: &mut [Router]) {\n\
    let snapshot = router.out_alloc.clone();\n\
    let c = router.credits[0][1];\n\
    if router.credits[0][1] >= 8 || router.credits[0][1] != 0 {}\n\
    let o = RouterOutcome { rr_sa: router.rr_sa };\n\
    outcome.sa_losers.push((0, 1));\n\
    router.credits[0][1] -= 1;\n\
    routers[next].inputs[0][1].state = VcState::Idle;\n\
    router.sa_losers.clear();\n\
    // router.rr_sa = [0; 5] in a comment is fine\n\
}\n";
        let lines: Vec<usize> = scan_confinement(text).into_iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![7, 8, 9], "exactly the three writes");
    }

    #[test]
    fn confinement_stops_at_tests_and_respects_boundaries() {
        let text = "\
fn f(router: &Router) { let x = router.rr_sample; }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t(router: &mut Router) { router.credits[0][0] += 1; }\n\
}\n";
        assert_eq!(scan_confinement(text), Vec::new());
    }

    #[test]
    fn scanner_flags_code_but_not_comments_or_tests() {
        let text = "\
fn hot() {\n\
    let x = maybe().unwrap();\n\
    // a comment mentioning .unwrap() is fine\n\
    let y = other(); // trailing .expect( mention is fine\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let z = maybe().expect(\"fine in tests\"); }\n\
}\n";
        let findings = scan_source(text);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, 2);
    }

    #[test]
    fn scanner_catches_expect() {
        let findings = scan_source("fn f() { g().expect(\"boom\"); }\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn ast_hot_paths_are_clean() {
        let violations = scan_hot_paths_ast(&repo_root()).expect("sources readable");
        assert_eq!(violations, Vec::new(), "AST panic scan must stay clean");
    }

    #[test]
    fn ast_commit_confinement_holds() {
        let violations = check_commit_confinement_ast(&repo_root()).expect("sources readable");
        assert_eq!(
            violations,
            Vec::new(),
            "no helper-method or cfg-hidden Router mutation outside the serial context"
        );
    }

    #[test]
    fn ast_trace_path_is_wallclock_free() {
        let violations = check_no_wallclock_ast(&repo_root()).expect("sources readable");
        assert_eq!(
            violations,
            Vec::new(),
            "AST wall-clock scan must stay clean"
        );
    }

    #[test]
    fn compute_phase_is_pure() {
        let violations = check_compute_purity(&repo_root()).expect("sources readable");
        assert_eq!(
            violations,
            Vec::new(),
            "compute_router must keep its &Router signature and avoid interior mutability"
        );
    }

    #[test]
    fn live_router_exposes_expected_mut_methods() {
        let methods = live_router_mut_methods(&repo_root()).expect("router.rs parses");
        for expected in [
            "set_locked",
            "accept",
            "return_credit",
            "try_take_credits",
            "reshape_packet",
        ] {
            assert!(
                methods.contains(expected),
                "Router::{expected} (&mut self) should be extracted, got {methods:?}"
            );
        }
    }

    #[test]
    fn fault_kinds_are_covered() {
        let violations = check_fault_kind_coverage(&repo_root()).expect("sources readable");
        assert_eq!(
            violations,
            Vec::new(),
            "every FaultKind needs an injection site and a test"
        );
    }

    #[test]
    fn enum_extraction_reads_variants() {
        let src = "\
/// Doc.\n\
pub enum FaultKind {\n\
    /// Drops a packet.\n\
    LinkDrop = 0,\n\
    PayloadBitFlip = 3,\n\
}\n";
        let variants: Vec<String> = enum_variants(src, "FaultKind")
            .into_iter()
            .map(|v| v.1)
            .collect();
        assert_eq!(
            variants,
            vec!["LinkDrop".to_string(), "PayloadBitFlip".to_string()]
        );
    }

    #[test]
    fn camel_to_snake_handles_acronym_free_names() {
        assert_eq!(camel_to_snake("LinkDrop"), "link_drop");
        assert_eq!(camel_to_snake("PayloadBitFlip"), "payload_bit_flip");
        assert_eq!(camel_to_snake("DramStall"), "dram_stall");
    }

    #[test]
    fn field_extraction_reads_pub_fields() {
        let src = "\
/// Doc.\n\
pub struct FooStats {\n\
    /// A counter.\n\
    pub alpha: u64,\n\
    /// Another.\n\
    pub beta_by_class: [u64; 3],\n\
    hidden: u64,\n\
}\n";
        let fields: Vec<String> = struct_fields(src, "FooStats")
            .into_iter()
            .map(|f| f.1)
            .collect();
        assert_eq!(
            fields,
            vec!["alpha".to_string(), "beta_by_class".to_string()]
        );
    }
}
