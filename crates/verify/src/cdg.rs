//! Channel-dependency-graph (CDG) deadlock analysis after Dally & Seitz.
//!
//! A wormhole network is deadlock-free if the dependency graph over its
//! (link, virtual channel) resources is acyclic. This module enumerates
//! every such channel of a [`Topology`], adds one dependency edge for
//! every pair of consecutive hops the routing *relation* can produce
//! (adaptive and oblivious algorithms contribute every port they may
//! legally pick), and searches for a cycle. The analysis is
//! conservative: it over-approximates adaptive algorithms by allowing a
//! packet to re-choose its dimension order at every hop, so an acyclic
//! verdict is always sound while a cycle on a purely adaptive relation
//! may be escapable.
//!
//! On the wrapped topologies (ring, torus, hierarchical ring) the walk
//! narrows each hop's virtual channels to exactly the subset the VC
//! allocator grants under the dateline discipline
//! ([`disco_noc::routing::output_vc_range`]), so the acyclicity of the
//! shipped dateline scheme is machine-checked rather than argued in
//! prose — and [`CdgOptions::use_datelines`] can switch the narrowing
//! off to confirm the same routing *without* datelines deadlocks.
//!
//! DISCO's engine adds one non-routing dependency class: locking a VC for
//! blocking de/compression while the resident packet is still *partial*
//! makes the locked channel wait on its upstream channel for the
//! remaining flits, closing a two-cycle against the upstream channel's
//! credit wait. [`CdgOptions::lock_partial_packets`] models that rule and
//! shows why the engine only locks whole-resident packets.

use disco_noc::packet::PacketClass;
use disco_noc::routing::{output_vc_range, route_choices, RoutingAlgorithm};
use disco_noc::topology::{NodeId, PortId, Topology};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::ops::Range;

/// One unidirectional (link, virtual channel) resource: the link leaving
/// `from` through output port `port` toward `to`, on virtual channel
/// `vc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Upstream node of the link.
    pub from: usize,
    /// Downstream node of the link.
    pub to: usize,
    /// Output port at `from`.
    pub port: PortId,
    /// Virtual channel index.
    pub vc: usize,
}

impl Channel {
    fn key(&self) -> (usize, usize, usize) {
        (self.from, self.port.0, self.vc)
    }
}

impl PartialOrd for Channel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Channel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(node {} -port {}-> node {}, vc {})",
            self.from, self.port.0, self.to, self.vc
        )
    }
}

/// What to analyze.
#[derive(Debug, Clone, Copy)]
pub struct CdgOptions {
    /// Virtual channels per port (split into class groups exactly as the
    /// router's VC allocator does).
    pub vcs: usize,
    /// The routing relation under test.
    pub routing: RoutingAlgorithm,
    /// Narrow each hop's VCs to the dateline subset the allocator
    /// grants (the shipped behaviour). Switch off to model a router
    /// that ignores the dateline split — the wrapped topologies then
    /// exhibit their classic wrap-edge cycle, which is exactly what a
    /// rejection test wants to see.
    pub use_datelines: bool,
    /// Model an engine that locks VCs whose packet is only partially
    /// resident (the deadlock the DISCO engine avoids by locking
    /// whole-resident packets only).
    pub lock_partial_packets: bool,
}

impl CdgOptions {
    /// Options matching a [`disco_noc::NocConfig`]: its VC count and
    /// routing algorithm, with the engine's legal locking rule and the
    /// allocator's real dateline discipline.
    pub fn from_config(config: &disco_noc::NocConfig) -> Self {
        CdgOptions {
            vcs: config.vcs,
            routing: config.routing,
            use_datelines: true,
            lock_partial_packets: false,
        }
    }
}

/// Outcome of one CDG analysis.
#[derive(Debug, Clone)]
pub struct CdgReport {
    /// Distinct (link, VC) channels the routing relation can use.
    pub channels: usize,
    /// Dependency edges between them.
    pub edges: usize,
    /// A dependency cycle, if one exists: consecutive channels each wait
    /// on the next, and the last waits on the first.
    pub cycle: Option<Vec<Channel>>,
}

impl CdgReport {
    /// True when no dependency cycle exists (deadlock freedom).
    pub fn is_deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }

    /// Human-readable rendering of the cycle, if any, closing back on the
    /// first channel.
    pub fn cycle_trace(&self) -> Option<String> {
        self.cycle.as_ref().map(|cycle| {
            let mut parts: Vec<String> = cycle.iter().map(|c| format!("{c}")).collect();
            if let Some(first) = cycle.first() {
                parts.push(format!("{first}"));
            }
            parts.join(" -> ")
        })
    }
}

/// The distinct VC groups the router's class split produces: each group
/// is its own virtual network, so dependencies never cross groups.
pub fn class_vc_groups(vcs: usize) -> Vec<Range<usize>> {
    let mut groups: Vec<Range<usize>> = [
        PacketClass::Request,
        PacketClass::Response,
        PacketClass::Coherence,
    ]
    .into_iter()
    .map(|c| c.vc_range(vcs))
    .collect();
    groups.sort_by_key(|r| (r.start, r.end));
    groups.dedup();
    groups
}

/// Analyzes a topology under one of the stock routing algorithms.
pub fn analyze(topo: &Topology, opts: &CdgOptions) -> CdgReport {
    analyze_impl(
        topo,
        &class_vc_groups(opts.vcs),
        |here, dst| route_choices(opts.routing, topo, here, dst),
        opts.use_datelines,
        opts.lock_partial_packets,
    )
}

/// Analyzes a topology under an arbitrary routing relation. `route_fn`
/// must return every output port the router may pick at `here` for a
/// packet bound to tile `dst`; tests inject deliberately cyclic
/// relations here. VC narrowing follows the allocator's real dateline
/// discipline.
pub fn analyze_with_route_fn<F>(
    topo: &Topology,
    vc_groups: &[Range<usize>],
    route_fn: F,
    lock_partial_packets: bool,
) -> CdgReport
where
    F: Fn(NodeId, NodeId) -> Vec<PortId>,
{
    analyze_impl(topo, vc_groups, route_fn, true, lock_partial_packets)
}

fn analyze_impl<F>(
    topo: &Topology,
    vc_groups: &[Range<usize>],
    route_fn: F,
    use_datelines: bool,
    lock_partial_packets: bool,
) -> CdgReport
where
    F: Fn(NodeId, NodeId) -> Vec<PortId>,
{
    let mut channels: BTreeSet<Channel> = BTreeSet::new();
    let mut edges: BTreeSet<(Channel, Channel)> = BTreeSet::new();
    for group in vc_groups {
        for src in 0..topo.tiles() {
            for dst in 0..topo.tiles() {
                if src == dst {
                    continue;
                }
                walk_pair(
                    topo,
                    group,
                    &route_fn,
                    use_datelines,
                    NodeId(src),
                    NodeId(dst),
                    &mut channels,
                    &mut edges,
                );
            }
        }
    }
    if lock_partial_packets {
        // A locked channel holding a partial packet waits on its upstream
        // channel for the remaining flits, while the upstream channel
        // waits on the locked one for credits: every routing dependency
        // u -> c gains the reverse c -> u.
        let reversed: Vec<_> = edges.iter().map(|&(a, b)| (b, a)).collect();
        edges.extend(reversed);
    }
    let cycle = find_cycle(&channels, &edges);
    CdgReport {
        channels: channels.len(),
        edges: edges.len(),
        cycle,
    }
}

/// Explores every path the routing relation allows from tile `src` to
/// tile `dst`, recording the channels it may occupy — narrowed to the
/// dateline VC subset when asked — and the consecutive-hop dependencies
/// between them.
#[allow(clippy::too_many_arguments)]
fn walk_pair<F>(
    topo: &Topology,
    group: &Range<usize>,
    route_fn: &F,
    use_datelines: bool,
    src: NodeId,
    dst: NodeId,
    channels: &mut BTreeSet<Channel>,
    edges: &mut BTreeSet<(Channel, Channel)>,
) where
    F: Fn(NodeId, NodeId) -> Vec<PortId>,
{
    let dest = topo.router_of(dst);
    let vcs_for = |here: NodeId, out: PortId| -> Range<usize> {
        if use_datelines {
            output_vc_range(topo, here, out, dst, group.clone())
        } else {
            group.clone()
        }
    };
    let mut visited = vec![false; topo.routers()];
    let start = topo.router_of(src);
    let mut queue = VecDeque::from([start]);
    visited[start.0] = true;
    while let Some(here) = queue.pop_front() {
        if here == dest {
            continue;
        }
        for dir in route_fn(here, dst) {
            if topo.is_local(dir) {
                continue;
            }
            let Some((next, _)) = topo.out_link(here, dir) else {
                continue;
            };
            for vc in vcs_for(here, dir) {
                channels.insert(Channel {
                    from: here.0,
                    to: next.0,
                    port: dir,
                    vc,
                });
            }
            if next != dest {
                // The packet holds the current channel while waiting to
                // acquire a dateline-legal VC of its class group on the
                // next one.
                for dir2 in route_fn(next, dst) {
                    if topo.is_local(dir2) {
                        continue;
                    }
                    let Some((after, _)) = topo.out_link(next, dir2) else {
                        continue;
                    };
                    for held in vcs_for(here, dir) {
                        for wanted in vcs_for(next, dir2) {
                            edges.insert((
                                Channel {
                                    from: here.0,
                                    to: next.0,
                                    port: dir,
                                    vc: held,
                                },
                                Channel {
                                    from: next.0,
                                    to: after.0,
                                    port: dir2,
                                    vc: wanted,
                                },
                            ));
                        }
                    }
                }
            }
            if !visited[next.0] {
                visited[next.0] = true;
                queue.push_back(next);
            }
        }
    }
}

/// Depth-first search for a cycle; returns the cycle's channels in
/// dependency order when one exists.
fn find_cycle(
    channels: &BTreeSet<Channel>,
    edges: &BTreeSet<(Channel, Channel)>,
) -> Option<Vec<Channel>> {
    let mut adjacency: BTreeMap<Channel, Vec<Channel>> = BTreeMap::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
    }
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color: BTreeMap<Channel, u8> = channels.iter().map(|&c| (c, 0u8)).collect();
    let mut path: Vec<Channel> = Vec::new();
    for &start in channels {
        if color.get(&start) != Some(&0) {
            continue;
        }
        if let Some(cycle) = dfs(start, &adjacency, &mut color, &mut path) {
            return Some(cycle);
        }
    }
    None
}

fn dfs(
    at: Channel,
    adjacency: &BTreeMap<Channel, Vec<Channel>>,
    color: &mut BTreeMap<Channel, u8>,
    path: &mut Vec<Channel>,
) -> Option<Vec<Channel>> {
    color.insert(at, 1);
    path.push(at);
    for &next in adjacency.get(&at).map(Vec::as_slice).unwrap_or(&[]) {
        match color.get(&next).copied().unwrap_or(0) {
            1 => {
                // Back edge: the cycle is the path suffix from `next` on.
                let start = path.iter().position(|&c| c == next).unwrap_or(0);
                return Some(path[start..].to_vec());
            }
            0 => {
                if let Some(cycle) = dfs(next, adjacency, color, path) {
                    return Some(cycle);
                }
            }
            _ => {}
        }
    }
    path.pop();
    color.insert(at, 2);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_noc::topology::{
        Mesh, Ring, TopologyChoice, TopologySpec, Torus, CLOCKWISE, EAST, NORTH, SOUTH, WEST,
    };

    fn clean(alg: RoutingAlgorithm, cols: usize, rows: usize, vcs: usize) -> CdgReport {
        analyze(
            &Mesh::new(cols, rows).build(),
            &CdgOptions {
                vcs,
                routing: alg,
                use_datelines: true,
                lock_partial_packets: false,
            },
        )
    }

    #[test]
    fn xy_mesh_is_deadlock_free() {
        let report = clean(RoutingAlgorithm::Xy, 4, 4, 2);
        assert!(
            report.is_deadlock_free(),
            "cycle: {:?}",
            report.cycle_trace()
        );
        assert!(report.channels > 0 && report.edges > 0);
    }

    #[test]
    fn yx_and_west_first_are_deadlock_free() {
        for alg in [RoutingAlgorithm::Yx, RoutingAlgorithm::WestFirst] {
            for (c, r) in [(2, 2), (4, 4), (5, 3)] {
                let report = clean(alg, c, r, 2);
                assert!(
                    report.is_deadlock_free(),
                    "{alg:?} on {c}x{r}: {:?}",
                    report.cycle_trace()
                );
            }
        }
    }

    #[test]
    fn xy_clean_across_vc_counts() {
        for vcs in [1, 2, 4, 8] {
            assert!(clean(RoutingAlgorithm::Xy, 4, 4, vcs).is_deadlock_free());
        }
    }

    #[test]
    fn every_shipped_topology_is_deadlock_free() {
        // The machine-checked half of the dateline argument: with the
        // allocator's VC narrowing in force, every topology the CLI can
        // build has an acyclic CDG at its minimum VC count.
        for choice in TopologyChoice::ALL {
            let topo = choice.build(4, 4);
            let report = analyze(
                &topo,
                &CdgOptions {
                    vcs: topo.min_vcs().max(2),
                    routing: RoutingAlgorithm::Xy,
                    use_datelines: true,
                    lock_partial_packets: false,
                },
            );
            assert!(
                report.is_deadlock_free(),
                "{choice}: {:?}",
                report.cycle_trace()
            );
            assert!(report.channels > 0 && report.edges > 0, "{choice}");
        }
    }

    #[test]
    fn undatelined_wrap_routing_is_rejected() {
        // The other half: the *same* routing relation with the dateline
        // narrowing disabled closes the classic wrap-edge cycle on both
        // the ring and the torus — proving the dateline is what the
        // deadlock freedom rests on, not the routing function.
        for (name, topo) in [
            ("ring", Ring::new(8).build()),
            ("torus", Torus::new(4, 4).build()),
        ] {
            let opts = CdgOptions {
                vcs: 4,
                routing: RoutingAlgorithm::Xy,
                use_datelines: false,
                lock_partial_packets: false,
            };
            let report = analyze(&topo, &opts);
            assert!(
                !report.is_deadlock_free(),
                "{name} without datelines must cycle"
            );
            let trace = report.cycle_trace().unwrap_or_default();
            assert!(trace.contains("node"), "{name} trace is readable: {trace}");
            let datelined = analyze(
                &topo,
                &CdgOptions {
                    use_datelines: true,
                    ..opts
                },
            );
            assert!(datelined.is_deadlock_free(), "{name} with datelines");
        }
    }

    #[test]
    fn injected_cyclic_routing_is_caught_with_trace() {
        // Clockwise ring on a 2x2 mesh: 0 -E-> 1 -S-> 3 -W-> 2 -N-> 0.
        let mesh = Mesh::new(2, 2).build();
        let local = mesh.local_port(NodeId(0));
        let ring = move |here: NodeId, dst: NodeId| -> Vec<PortId> {
            if here == dst {
                return vec![local];
            }
            vec![match here.0 {
                0 => EAST,
                1 => SOUTH,
                3 => WEST,
                _ => NORTH,
            }]
        };
        let single_vc = class_vc_groups(1);
        let report = analyze_with_route_fn(&mesh, &single_vc, ring, false);
        assert_eq!(
            report.cycle.as_ref().map(Vec::len),
            Some(4),
            "the full ring is the cycle: {:?}",
            report.cycle_trace()
        );
        let trace = report.cycle_trace().unwrap_or_default();
        for node in 0..4 {
            assert!(
                trace.contains(&format!("node {node}")),
                "trace names node {node}: {trace}"
            );
        }
    }

    #[test]
    fn locking_partial_packets_closes_a_cycle() {
        // XY itself is clean, but an engine that locks a VC still waiting
        // on upstream flits creates a two-cycle on any multi-hop route.
        let opts = CdgOptions {
            vcs: 2,
            routing: RoutingAlgorithm::Xy,
            use_datelines: true,
            lock_partial_packets: true,
        };
        let report = analyze(&Mesh::new(2, 2).build(), &opts);
        let cycle = report.cycle.clone().unwrap_or_default();
        assert_eq!(cycle.len(), 2, "lock-induced cycles are two-cycles");
        let trace = report.cycle_trace().unwrap_or_default();
        assert!(trace.contains("vc"), "trace is readable: {trace}");
    }

    #[test]
    fn escape_routing_around_dead_links_stays_acyclic() {
        // The fault layer's dead-link detours must not re-introduce the
        // turn cycles XY forbids. Model the exact relation the routers
        // use under an active plan: XY adjusted by `escape_route` for a
        // representative dead-link set.
        use disco_noc::routing::{escape_route, xy_route};
        let mesh = Mesh::new(4, 4).build();
        let dead = [(5usize, EAST), (10usize, SOUTH)];
        let is_dead = |n: NodeId, p: PortId| dead.contains(&(n.0, p));
        let route = |here: NodeId, dst: NodeId| -> Vec<PortId> {
            vec![escape_route(
                &mesh,
                here,
                dst,
                xy_route(&mesh, here, dst),
                is_dead,
            )]
        };
        let report = analyze_with_route_fn(&mesh, &class_vc_groups(2), route, false);
        assert!(
            report.is_deadlock_free(),
            "escape detours form a cycle: {:?}",
            report.cycle_trace()
        );
        assert!(report.channels > 0 && report.edges > 0);
    }

    #[test]
    fn ring_escape_reversal_stays_acyclic() {
        // The ring's path-blocked escape reverses direction at most once
        // per packet; under the dateline narrowing, the primary ∪ escape
        // relation must stay acyclic.
        use disco_noc::routing::{escape_route, xy_route};
        let ring = Ring::new(8).build();
        let is_dead = |n: NodeId, p: PortId| n == NodeId(2) && p == CLOCKWISE;
        let route = |here: NodeId, dst: NodeId| -> Vec<PortId> {
            vec![escape_route(
                &ring,
                here,
                dst,
                xy_route(&ring, here, dst),
                is_dead,
            )]
        };
        let report = analyze_with_route_fn(&ring, &class_vc_groups(4), route, false);
        assert!(
            report.is_deadlock_free(),
            "ring escape forms a cycle: {:?}",
            report.cycle_trace()
        );
    }

    #[test]
    fn channel_display_is_readable() {
        let c = Channel {
            from: 0,
            to: 1,
            port: EAST,
            vc: 1,
        };
        assert_eq!(format!("{c}"), "(node 0 -port 2-> node 1, vc 1)");
    }

    #[test]
    fn class_groups_split_and_dedup() {
        assert_eq!(class_vc_groups(1), vec![0..1]);
        assert_eq!(class_vc_groups(2), vec![0..1, 1..2]);
        assert_eq!(class_vc_groups(4), vec![0..2, 2..4]);
    }
}
