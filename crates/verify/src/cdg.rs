//! Channel-dependency-graph (CDG) deadlock analysis after Dally & Seitz.
//!
//! A wormhole network is deadlock-free if the dependency graph over its
//! (link, virtual channel) resources is acyclic. This module enumerates
//! every such channel of a [`Mesh`], adds one dependency edge for every
//! pair of consecutive hops the routing *relation* can produce (adaptive
//! and oblivious algorithms contribute every direction they may legally
//! pick), and searches for a cycle. The analysis is conservative: it
//! over-approximates adaptive algorithms by allowing a packet to re-choose
//! its dimension order at every hop, so an acyclic verdict is always
//! sound while a cycle on a purely adaptive relation may be escapable.
//!
//! DISCO's engine adds one non-routing dependency class: locking a VC for
//! blocking de/compression while the resident packet is still *partial*
//! makes the locked channel wait on its upstream channel for the
//! remaining flits, closing a two-cycle against the upstream channel's
//! credit wait. [`CdgOptions::lock_partial_packets`] models that rule and
//! shows why the engine only locks whole-resident packets.

use disco_noc::packet::PacketClass;
use disco_noc::routing::{route_choices, RoutingAlgorithm};
use disco_noc::topology::{Direction, Mesh, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::ops::Range;

/// One unidirectional (link, virtual channel) resource: the link leaving
/// `from` toward `to` in direction `dir`, on virtual channel `vc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Upstream node of the link.
    pub from: usize,
    /// Downstream node of the link.
    pub to: usize,
    /// Port direction at `from`.
    pub dir: Direction,
    /// Virtual channel index.
    pub vc: usize,
}

impl Channel {
    fn key(&self) -> (usize, usize, usize) {
        (self.from, self.dir.index(), self.vc)
    }
}

impl PartialOrd for Channel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Channel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(node {} -{:?}-> node {}, vc {})",
            self.from, self.dir, self.to, self.vc
        )
    }
}

/// What to analyze.
#[derive(Debug, Clone, Copy)]
pub struct CdgOptions {
    /// Virtual channels per port (split into class groups exactly as the
    /// router's VC allocator does).
    pub vcs: usize,
    /// The routing relation under test.
    pub routing: RoutingAlgorithm,
    /// Model an engine that locks VCs whose packet is only partially
    /// resident (the deadlock the DISCO engine avoids by locking
    /// whole-resident packets only).
    pub lock_partial_packets: bool,
}

impl CdgOptions {
    /// Options matching a [`disco_noc::NocConfig`]: its VC count and
    /// routing algorithm, with the engine's legal locking rule.
    pub fn from_config(config: &disco_noc::NocConfig) -> Self {
        CdgOptions {
            vcs: config.vcs,
            routing: config.routing,
            lock_partial_packets: false,
        }
    }
}

/// Outcome of one CDG analysis.
#[derive(Debug, Clone)]
pub struct CdgReport {
    /// Distinct (link, VC) channels the routing relation can use.
    pub channels: usize,
    /// Dependency edges between them.
    pub edges: usize,
    /// A dependency cycle, if one exists: consecutive channels each wait
    /// on the next, and the last waits on the first.
    pub cycle: Option<Vec<Channel>>,
}

impl CdgReport {
    /// True when no dependency cycle exists (deadlock freedom).
    pub fn is_deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }

    /// Human-readable rendering of the cycle, if any, closing back on the
    /// first channel.
    pub fn cycle_trace(&self) -> Option<String> {
        self.cycle.as_ref().map(|cycle| {
            let mut parts: Vec<String> = cycle.iter().map(|c| format!("{c}")).collect();
            if let Some(first) = cycle.first() {
                parts.push(format!("{first}"));
            }
            parts.join(" -> ")
        })
    }
}

/// The distinct VC groups the router's class split produces: each group
/// is its own virtual network, so dependencies never cross groups.
pub fn class_vc_groups(vcs: usize) -> Vec<Range<usize>> {
    let mut groups: Vec<Range<usize>> = [
        PacketClass::Request,
        PacketClass::Response,
        PacketClass::Coherence,
    ]
    .into_iter()
    .map(|c| c.vc_range(vcs))
    .collect();
    groups.sort_by_key(|r| (r.start, r.end));
    groups.dedup();
    groups
}

/// Analyzes a mesh under one of the stock routing algorithms.
pub fn analyze_mesh(mesh: &Mesh, opts: &CdgOptions) -> CdgReport {
    analyze_with_route_fn(
        mesh,
        &class_vc_groups(opts.vcs),
        |here, dst| route_choices(opts.routing, mesh, here, dst),
        opts.lock_partial_packets,
    )
}

/// Analyzes a mesh under an arbitrary routing relation. `route_fn` must
/// return every direction the router may pick at `here` for a packet
/// bound to `dst`; tests inject deliberately cyclic relations here.
pub fn analyze_with_route_fn<F>(
    mesh: &Mesh,
    vc_groups: &[Range<usize>],
    route_fn: F,
    lock_partial_packets: bool,
) -> CdgReport
where
    F: Fn(NodeId, NodeId) -> Vec<Direction>,
{
    let mut channels: BTreeSet<Channel> = BTreeSet::new();
    let mut edges: BTreeSet<(Channel, Channel)> = BTreeSet::new();
    for group in vc_groups {
        for src in 0..mesh.nodes() {
            for dst in 0..mesh.nodes() {
                if src == dst {
                    continue;
                }
                walk_pair(
                    mesh,
                    group,
                    &route_fn,
                    NodeId(src),
                    NodeId(dst),
                    &mut channels,
                    &mut edges,
                );
            }
        }
    }
    if lock_partial_packets {
        // A locked channel holding a partial packet waits on its upstream
        // channel for the remaining flits, while the upstream channel
        // waits on the locked one for credits: every routing dependency
        // u -> c gains the reverse c -> u.
        let reversed: Vec<_> = edges.iter().map(|&(a, b)| (b, a)).collect();
        edges.extend(reversed);
    }
    let cycle = find_cycle(&channels, &edges);
    CdgReport {
        channels: channels.len(),
        edges: edges.len(),
        cycle,
    }
}

/// Explores every path the routing relation allows from `src` to `dst`,
/// recording the channels it may occupy and the consecutive-hop
/// dependencies between them.
fn walk_pair<F>(
    mesh: &Mesh,
    group: &Range<usize>,
    route_fn: &F,
    src: NodeId,
    dst: NodeId,
    channels: &mut BTreeSet<Channel>,
    edges: &mut BTreeSet<(Channel, Channel)>,
) where
    F: Fn(NodeId, NodeId) -> Vec<Direction>,
{
    let mut visited = vec![false; mesh.nodes()];
    let mut queue = VecDeque::from([src]);
    visited[src.0] = true;
    while let Some(here) = queue.pop_front() {
        if here == dst {
            continue;
        }
        for dir in route_fn(here, dst) {
            if dir == Direction::Local {
                continue;
            }
            let Some(next) = mesh.neighbor(here, dir) else {
                continue;
            };
            for vc in group.clone() {
                channels.insert(Channel {
                    from: here.0,
                    to: next.0,
                    dir,
                    vc,
                });
            }
            if next != dst {
                // The packet holds the current channel while waiting to
                // acquire any VC of its class group on the next one.
                for dir2 in route_fn(next, dst) {
                    if dir2 == Direction::Local {
                        continue;
                    }
                    let Some(after) = mesh.neighbor(next, dir2) else {
                        continue;
                    };
                    for held in group.clone() {
                        for wanted in group.clone() {
                            edges.insert((
                                Channel {
                                    from: here.0,
                                    to: next.0,
                                    dir,
                                    vc: held,
                                },
                                Channel {
                                    from: next.0,
                                    to: after.0,
                                    dir: dir2,
                                    vc: wanted,
                                },
                            ));
                        }
                    }
                }
            }
            if !visited[next.0] {
                visited[next.0] = true;
                queue.push_back(next);
            }
        }
    }
}

/// Depth-first search for a cycle; returns the cycle's channels in
/// dependency order when one exists.
fn find_cycle(
    channels: &BTreeSet<Channel>,
    edges: &BTreeSet<(Channel, Channel)>,
) -> Option<Vec<Channel>> {
    let mut adjacency: BTreeMap<Channel, Vec<Channel>> = BTreeMap::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
    }
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color: BTreeMap<Channel, u8> = channels.iter().map(|&c| (c, 0u8)).collect();
    let mut path: Vec<Channel> = Vec::new();
    for &start in channels {
        if color.get(&start) != Some(&0) {
            continue;
        }
        if let Some(cycle) = dfs(start, &adjacency, &mut color, &mut path) {
            return Some(cycle);
        }
    }
    None
}

fn dfs(
    at: Channel,
    adjacency: &BTreeMap<Channel, Vec<Channel>>,
    color: &mut BTreeMap<Channel, u8>,
    path: &mut Vec<Channel>,
) -> Option<Vec<Channel>> {
    color.insert(at, 1);
    path.push(at);
    for &next in adjacency.get(&at).map(Vec::as_slice).unwrap_or(&[]) {
        match color.get(&next).copied().unwrap_or(0) {
            1 => {
                // Back edge: the cycle is the path suffix from `next` on.
                let start = path.iter().position(|&c| c == next).unwrap_or(0);
                return Some(path[start..].to_vec());
            }
            0 => {
                if let Some(cycle) = dfs(next, adjacency, color, path) {
                    return Some(cycle);
                }
            }
            _ => {}
        }
    }
    path.pop();
    color.insert(at, 2);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(alg: RoutingAlgorithm, cols: usize, rows: usize, vcs: usize) -> CdgReport {
        analyze_mesh(
            &Mesh::new(cols, rows),
            &CdgOptions {
                vcs,
                routing: alg,
                lock_partial_packets: false,
            },
        )
    }

    #[test]
    fn xy_mesh_is_deadlock_free() {
        let report = clean(RoutingAlgorithm::Xy, 4, 4, 2);
        assert!(
            report.is_deadlock_free(),
            "cycle: {:?}",
            report.cycle_trace()
        );
        assert!(report.channels > 0 && report.edges > 0);
    }

    #[test]
    fn yx_and_west_first_are_deadlock_free() {
        for alg in [RoutingAlgorithm::Yx, RoutingAlgorithm::WestFirst] {
            for (c, r) in [(2, 2), (4, 4), (5, 3)] {
                let report = clean(alg, c, r, 2);
                assert!(
                    report.is_deadlock_free(),
                    "{alg:?} on {c}x{r}: {:?}",
                    report.cycle_trace()
                );
            }
        }
    }

    #[test]
    fn xy_clean_across_vc_counts() {
        for vcs in [1, 2, 4, 8] {
            assert!(clean(RoutingAlgorithm::Xy, 4, 4, vcs).is_deadlock_free());
        }
    }

    #[test]
    fn o1turn_sharing_class_vcs_is_flagged() {
        // O1TURN mixes both dimension orders inside one class VC group, so
        // the conservative CDG finds the classic XY/YX turn cycle — the
        // algorithm needs one virtual network per dimension order, which
        // the class split alone does not provide.
        let report = clean(RoutingAlgorithm::O1Turn, 4, 4, 2);
        assert!(!report.is_deadlock_free());
    }

    #[test]
    fn injected_cyclic_routing_is_caught_with_trace() {
        // Clockwise ring on a 2x2 mesh: 0 -E-> 1 -S-> 3 -W-> 2 -N-> 0.
        let mesh = Mesh::new(2, 2);
        let ring = |here: NodeId, dst: NodeId| -> Vec<Direction> {
            if here == dst {
                return vec![Direction::Local];
            }
            vec![match here.0 {
                0 => Direction::East,
                1 => Direction::South,
                3 => Direction::West,
                _ => Direction::North,
            }]
        };
        let single_vc = class_vc_groups(1);
        let report = analyze_with_route_fn(&mesh, &single_vc, ring, false);
        assert_eq!(
            report.cycle.as_ref().map(Vec::len),
            Some(4),
            "the full ring is the cycle: {:?}",
            report.cycle_trace()
        );
        let trace = report.cycle_trace().unwrap_or_default();
        for node in 0..4 {
            assert!(
                trace.contains(&format!("node {node}")),
                "trace names node {node}: {trace}"
            );
        }
    }

    #[test]
    fn locking_partial_packets_closes_a_cycle() {
        // XY itself is clean, but an engine that locks a VC still waiting
        // on upstream flits creates a two-cycle on any multi-hop route.
        let opts = CdgOptions {
            vcs: 2,
            routing: RoutingAlgorithm::Xy,
            lock_partial_packets: true,
        };
        let report = analyze_mesh(&Mesh::new(2, 2), &opts);
        let cycle = report.cycle.clone().unwrap_or_default();
        assert_eq!(cycle.len(), 2, "lock-induced cycles are two-cycles");
        let trace = report.cycle_trace().unwrap_or_default();
        assert!(trace.contains("vc"), "trace is readable: {trace}");
    }

    #[test]
    fn escape_routing_around_dead_links_stays_acyclic() {
        // The fault layer's dead-link detours must not re-introduce the
        // turn cycles XY forbids. Model the exact relation the routers
        // use under an active plan: XY adjusted by `escape_route` for a
        // representative dead-link set.
        use disco_noc::routing::{escape_route, xy_route};
        let mesh = Mesh::new(4, 4);
        let dead = [(5usize, Direction::East), (10usize, Direction::South)];
        let is_dead = |n: NodeId, d: Direction| dead.contains(&(n.0, d));
        let route = |here: NodeId, dst: NodeId| -> Vec<Direction> {
            vec![escape_route(
                &mesh,
                here,
                dst,
                xy_route(&mesh, here, dst),
                is_dead,
            )]
        };
        let report = analyze_with_route_fn(&mesh, &class_vc_groups(2), route, false);
        assert!(
            report.is_deadlock_free(),
            "escape detours form a cycle: {:?}",
            report.cycle_trace()
        );
        assert!(report.channels > 0 && report.edges > 0);
    }

    #[test]
    fn channel_display_is_readable() {
        let c = Channel {
            from: 0,
            to: 1,
            dir: Direction::East,
            vc: 1,
        };
        assert_eq!(format!("{c}"), "(node 0 -East-> node 1, vc 1)");
    }

    #[test]
    fn class_groups_split_and_dedup() {
        assert_eq!(class_vc_groups(1), vec![0..1]);
        assert_eq!(class_vc_groups(2), vec![0..1, 1..2]);
        assert_eq!(class_vc_groups(4), vec![0..2, 2..4]);
    }
}
