//! Credit/buffer conservation: a symbolic proof over the router
//! pipeline's operation set, plus a conformance check against the live
//! network.
//!
//! # The ledger
//!
//! For one (link, VC) pair, every buffer slot of the downstream input VC
//! is, at any instant, in exactly one of four places:
//!
//! | component | meaning |
//! |---|---|
//! | `c` | credits held by the upstream router (slots it may still fill) |
//! | `b` | occupied downstream buffer slots |
//! | `r` | credit returns in flight back upstream |
//! | `h` | credits held by the reshaper mid-grow (`try_take_credits`) |
//!
//! Conservation says `c + b + r + h == buffer_depth`, always. Each way
//! the shipped code moves a slot between components is captured as a
//! [`LedgerOp`] — a guard plus a delta vector — covering the
//! compute/commit pipeline, the faults-retransmission drop path, escape
//! routing (which departs like any other grant), and the in-place
//! packet reshaping paths. [`check_conservation`] then explores *every*
//! reachable ledger state (the space is tiny) and proves that no
//! operation sequence can leak a credit (sum < depth), double-free one
//! (sum > depth), or drive any component negative. Because ops are data,
//! the mutation suite (`tests/verify_mutations.rs`) can delete a credit
//! increment or drop a guard and assert the proof fails.
//!
//! # Live conformance
//!
//! The symbolic proof is about the *rules*; [`verify_live_credits`]
//! checks the *implementation* follows them: it drains traffic through a
//! real [`disco_noc::Network`] and asserts every (link, VC) ledger
//! returns to exactly `c == buffer_depth` at quiescence. This is
//! strictly stronger than the runtime `validate` check, which only
//! bounds `credits + occupancy ≤ depth` mid-flight.

use crate::explorer::{self, ExploreOptions, ExploreReport, TransitionSystem};
use disco_noc::{Network, NocConfig, NodeId, PacketClass, Payload, PortId, TopologyChoice};

/// Index of each ledger component.
const C: usize = 0;
const B: usize = 1;
const R: usize = 2;
const H: usize = 3;

/// One way the router pipeline moves buffer slots between ledger
/// components: enabled when every component is at least its `guard`,
/// then shifts by `delta`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerOp {
    /// Which code path this op models.
    pub name: String,
    /// Minimum component values required to fire.
    pub guard: [i16; 4],
    /// Component changes applied on firing.
    pub delta: [i16; 4],
}

/// The ledger operations of the shipped router pipeline for one
/// (link, VC) at the given buffer depth.
///
/// - `depart` — commit pass sends a flit downstream: an upstream credit
///   is consumed, a downstream slot fills (`commit.rs` departure +
///   `Router::accept`). Escape-VC departures take this same path.
/// - `drain` — downstream forwards/ejects the flit; the freed slot's
///   credit return enters the reverse link (`commit.rs` →
///   `return_credit` on the upstream router).
/// - `credit-return` — the in-flight return lands upstream.
/// - `fault-drop` — the faults layer eats a corrupted flit at the
///   ejection port but still frees the slot and returns the credit
///   (`faults.rs` drop/retransmission path); same shape as `drain`,
///   listed separately so deleting it in a mutation leaves the proof
///   intact while *altering* it breaks conservation.
/// - `reshape-shrink(k)` — in-place recompression frees `k` tail slots;
///   their credits return upstream synchronously (`reshape_resident` →
///   `return_credit` × k).
/// - `reshape-grow-hold(k)` — decompression-in-place first reserves `k`
///   upstream credits (`try_take_credits`), holding them.
/// - `reshape-grow-commit(k)` — the grown flits materialize in the
///   reserved slots (`reshape_packet`), converting held credits into
///   occupancy.
pub fn live_ops(depth: i16) -> Vec<LedgerOp> {
    let mut ops = vec![
        LedgerOp {
            name: "depart".to_string(),
            guard: [1, 0, 0, 0],
            delta: [-1, 1, 0, 0],
        },
        LedgerOp {
            name: "drain".to_string(),
            guard: [0, 1, 0, 0],
            delta: [0, -1, 1, 0],
        },
        LedgerOp {
            name: "credit-return".to_string(),
            guard: [0, 0, 1, 0],
            delta: [1, 0, -1, 0],
        },
        LedgerOp {
            name: "fault-drop".to_string(),
            guard: [0, 1, 0, 0],
            delta: [0, -1, 1, 0],
        },
    ];
    for k in 1..=depth {
        ops.push(LedgerOp {
            name: format!("reshape-shrink({k})"),
            guard: [0, k, 0, 0],
            delta: [k, -k, 0, 0],
        });
        ops.push(LedgerOp {
            name: format!("reshape-grow-hold({k})"),
            guard: [k, 0, 0, 0],
            delta: [-k, 0, 0, k],
        });
        ops.push(LedgerOp {
            name: format!("reshape-grow-commit({k})"),
            guard: [0, 0, 0, k],
            delta: [0, k, 0, -k],
        });
    }
    ops
}

/// The symbolic per-VC credit ledger as a transition system.
pub struct CreditLedger {
    /// Buffer depth (the conserved total).
    pub depth: i16,
    /// The operation set under proof.
    pub ops: Vec<LedgerOp>,
}

impl CreditLedger {
    /// The shipped pipeline's ledger at `depth`.
    pub fn live(depth: i16) -> Self {
        Self {
            depth,
            ops: live_ops(depth),
        }
    }
}

impl TransitionSystem for CreditLedger {
    type State = [i16; 4];

    fn initial(&self) -> Vec<[i16; 4]> {
        // Reset: all slots are upstream credits.
        vec![[self.depth, 0, 0, 0]]
    }

    fn enabled(&self, s: &[i16; 4]) -> Vec<String> {
        self.ops
            .iter()
            .filter(|op| (0..4).all(|i| s[i] >= op.guard[i]))
            .map(|op| {
                format!(
                    "{} @ [c={} b={} r={} h={}]",
                    op.name, s[C], s[B], s[R], s[H]
                )
            })
            .collect()
    }

    fn apply(&self, s: &[i16; 4], i: usize) -> [i16; 4] {
        let fireable: Vec<&LedgerOp> = self
            .ops
            .iter()
            .filter(|op| (0..4).all(|j| s[j] >= op.guard[j]))
            .collect();
        let op = fireable[i];
        let mut next = *s;
        for (component, delta) in next.iter_mut().zip(op.delta) {
            *component += delta;
        }
        next
    }

    fn check(&self, s: &[i16; 4]) -> Vec<String> {
        let mut violations = Vec::new();
        let sum: i16 = s.iter().sum();
        if sum < self.depth {
            violations.push(format!(
                "credit leak: c+b+r+h = {sum} < depth {} at [c={} b={} r={} h={}]",
                self.depth, s[C], s[B], s[R], s[H]
            ));
        }
        if sum > self.depth {
            violations.push(format!(
                "credit double-free: c+b+r+h = {sum} > depth {} at [c={} b={} r={} h={}]",
                self.depth, s[C], s[B], s[R], s[H]
            ));
        }
        for (i, name) in ["credits", "occupancy", "returns", "held"]
            .iter()
            .enumerate()
        {
            if s[i] < 0 {
                violations.push(format!(
                    "{name} driven negative ({}) — an op fired without a sufficient guard",
                    s[i]
                ));
            }
        }
        violations
    }

    fn quiescent(&self, _s: &[i16; 4]) -> bool {
        // The ledger has no liveness obligation; depth 0 has no ops.
        true
    }

    fn encode(&self, s: &[i16; 4]) -> Vec<u8> {
        s.iter().flat_map(|v| v.to_le_bytes()).collect()
    }
}

/// Proves conservation for the shipped operation set at `depth` by
/// exhaustive reachability over the ledger space.
pub fn check_conservation(ledger: &CreditLedger) -> ExploreReport {
    explorer::explore(
        ledger,
        &ExploreOptions {
            // The reachable space is all non-negative 4-compositions of
            // `depth` — well under these bounds.
            max_depth: 4 * ledger.depth.unsigned_abs() as usize + 8,
            max_states: 100_000,
            workers: 1,
            max_violations: 4,
        },
    )
}

/// Conformance: after draining real traffic, every (link, VC) ledger of
/// a live [`Network`] must hold *exactly* `buffer_depth` credits — a
/// leak leaves fewer, a double-free more. The check runs over every
/// shipped topology (at its minimum legal VC count) so the wrapped
/// shapes' dateline allocation and the concentrated mesh's shared
/// routers are covered too. Returns a summary on success, or every
/// discrepancy found.
///
/// # Errors
///
/// One entry per (topology, link, VC) whose credit count differs from
/// `buffer_depth` at quiescence, or a description of a non-draining run.
pub fn verify_live_credits() -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    let mut links = 0usize;
    let mut delivered = 0usize;
    let depth = NocConfig::default().buffer_depth;
    for choice in TopologyChoice::ALL {
        match verify_live_credits_on(choice) {
            Ok((l, d)) => {
                links += l;
                delivered += d;
            }
            Err(mut e) => errors.append(&mut e),
        }
    }
    if errors.is_empty() {
        Ok(format!(
            "{} topologies, {links} (link, VC) ledgers at exactly {depth} credits after \
             {delivered} deliveries",
            TopologyChoice::ALL.len()
        ))
    } else {
        Err(errors)
    }
}

/// One topology's drain-and-audit leg: returns (ledgers checked,
/// packets delivered) or the list of discrepancies.
fn verify_live_credits_on(choice: TopologyChoice) -> Result<(usize, usize), Vec<String>> {
    let topo = choice.build(4, 4);
    let config = NocConfig {
        vcs: topo.min_vcs().max(NocConfig::default().vcs),
        ..NocConfig::default()
    };
    let mut net = Network::new(topo, config);
    // Cross traffic on all three classes, including multi-flit raw data
    // responses, so every link direction and both VC groups carry flits.
    let tiles = net.topology().tiles();
    let mut tag = 0u64;
    for (src, dst) in [
        (0usize, 15usize),
        (15, 0),
        (3, 12),
        (12, 3),
        (5, 10),
        (10, 5),
    ] {
        for class in [
            PacketClass::Request,
            PacketClass::Response,
            PacketClass::Coherence,
        ] {
            let payload = if class == PacketClass::Response {
                Payload::Raw(disco_compress::CacheLine::from_u64_words([tag; 8]))
            } else {
                Payload::None
            };
            net.send(
                NodeId(src),
                NodeId(dst),
                class,
                payload,
                class == PacketClass::Response,
                tag,
            );
            tag += 1;
        }
    }
    let mut delivered = 0usize;
    for _ in 0..10_000 {
        net.tick();
        for n in 0..tiles {
            delivered += net.take_delivered(NodeId(n)).len();
        }
        if net.is_idle() {
            break;
        }
    }
    if !net.is_idle() {
        return Err(vec![format!(
            "{choice}: network failed to drain ({delivered} of {tag} packets delivered)"
        )]);
    }
    let mut errors = Vec::new();
    let depth = net.config().buffer_depth;
    let vcs = net.config().vcs;
    let mut links = 0usize;
    for n in 0..net.topology().routers() {
        let router = net.router(NodeId(n));
        for port in 0..net.topology().link_ports() {
            let port = PortId(port);
            if net.topology().out_link(NodeId(n), port).is_none() {
                continue;
            }
            for vc in 0..vcs {
                links += 1;
                let credits = router.credit_in(port, vc);
                if credits != depth {
                    errors.push(format!(
                        "{choice}: router {n} port {} vc{vc}: {credits} credits at \
                         quiescence, expected exactly {depth}",
                        port.0
                    ));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok((links, delivered))
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_ops_conserve_at_depths() {
        for depth in [1i16, 2, 4, 8] {
            let report = check_conservation(&CreditLedger::live(depth));
            assert!(report.clean(), "depth {depth}: {:?}", report.violations);
            assert!(!report.truncated, "depth {depth} must explore fully");
            // All 4-compositions of depth are reachable:
            // (depth+1)(depth+2)(depth+3)/6 states.
            let d = depth as u64;
            assert_eq!(report.states, (d + 1) * (d + 2) * (d + 3) / 6);
        }
    }

    #[test]
    fn dropped_credit_increment_leaks() {
        // The classic bug: the drain path frees the buffer slot but
        // forgets to send the credit back.
        let mut ledger = CreditLedger::live(4);
        for op in &mut ledger.ops {
            if op.name == "drain" {
                op.delta = [0, -1, 0, 0];
            }
        }
        let report = check_conservation(&ledger);
        assert!(!report.clean());
        assert!(report.violations[0].messages[0].contains("leak"));
    }

    #[test]
    fn unguarded_return_double_frees() {
        let mut ledger = CreditLedger::live(4);
        for op in &mut ledger.ops {
            if op.name == "credit-return" {
                op.guard = [0, 0, 0, 0];
            }
        }
        let report = check_conservation(&ledger);
        assert!(!report.clean());
        let all: String = report.violations[0].messages.join("; ");
        assert!(
            all.contains("double-free") || all.contains("negative"),
            "{all}"
        );
    }

    #[test]
    fn live_network_conserves_credits() {
        let summary = verify_live_credits().expect("conformance holds");
        assert!(summary.contains("exactly 8 credits"));
    }
}
