//! Token-tree-grade Rust source analysis for the AST lints.
//!
//! The workspace builds fully offline, so there is no `syn`; instead this
//! module carries a small, honest Rust lexer and delimiter-tree parser
//! that is exact about the things the lints need and nothing more:
//!
//! - comments (line, nested block) and string/char/byte/raw literals are
//!   lexed away, so no lint ever matches inside one;
//! - multi-character operators (`==`, `+=`, `=>`, `..=`, …) are single
//!   tokens, so "is this an assignment?" is a token test, not a substring
//!   heuristic;
//! - `#[cfg(test)]` / `#[test]` items are skipped *as items* — a test
//!   module in the middle of a file no longer blinds the scanner to the
//!   non-test code after it, and `#[cfg(feature = …)]`-gated branches are
//!   scanned like any other code.
//!
//! On top of the trees sit the lint passes proper:
//! [`scan_panics`], [`scan_confinement`] (direct field writes *and*
//! mutations routed through `&mut self` helper methods — the blind spot
//! of the old string scanner), [`scan_wallclock`], and
//! [`scan_compute_purity`]. The mutating-method set is not hard-coded: it
//! is extracted from `impl Router` in `router.rs` by
//! [`router_mut_methods`], so a new `&mut self` method is covered the
//! commit it lands.

use std::collections::BTreeSet;

/// Token categories the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Operator or other punctuation (multi-char operators are one token).
    Punct,
    /// String/char/byte/numeric literal (contents are opaque to lints).
    Literal,
    /// A `'label` or `'lifetime`.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Source text (literal text is preserved but never matched on).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// A delimiter tree: either a leaf token or a balanced `(…)`, `[…]`,
/// `{…}` group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A single token.
    Leaf(Tok),
    /// A balanced delimiter group.
    Group(Group),
}

/// A balanced delimiter group and its children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub line: usize,
    /// The trees between the delimiters.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The leaf token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one with the given delimiter.
    pub fn group(&self, delim: char) -> Option<&Group> {
        match self {
            Tree::Group(g) if g.delim == delim => Some(g),
            _ => None,
        }
    }

    /// True if this is an identifier leaf with the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// True if this is a punct leaf with the given text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    /// Source line of this tree's first token.
    pub fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.line,
        }
    }
}

/// Multi-character operators, longest first so lexing is greedy.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "=>", "->", "::", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Compound assignment operators plus plain `=` — exactly the tokens that
/// write through their left-hand side.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// Lexes Rust source into tokens, discarding comments and whitespace.
///
/// # Errors
///
/// Returns a message (with a 1-based line) on an unterminated comment,
/// string, or char literal.
pub fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(format!("line {start_line}: unterminated block comment"));
                }
            }
            b'"' => {
                let (len, newlines) = lex_string(&b[i..], line)?;
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..i + len].to_string(),
                    line,
                });
                line += newlines;
                i += len;
            }
            b'r' | b'b' if raw_or_byte_string_len(&b[i..]).is_some() => {
                let (len, newlines) = raw_or_byte_string_len(&b[i..])
                    .ok_or_else(|| format!("line {line}: unterminated raw/byte string"))??;
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..i + len].to_string(),
                    line,
                });
                line += newlines;
                i += len;
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident with
                // no closing quote right after the first char.
                let is_lifetime = b
                    .get(i + 1)
                    .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_')
                    && b.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'\'' {
                        if b[j] == b'\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    if j >= b.len() {
                        return Err(format!("line {line}: unterminated char literal"));
                    }
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: src[i..=j].to_string(),
                        line,
                    });
                    i = j + 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.'
                        && b.get(j + 1).is_some_and(u8::is_ascii_digit)
                        && b.get(j.wrapping_sub(1)) != Some(&b'.')
                    {
                        j += 1; // decimal point of a float, not `..`
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                let rest = &src[i..];
                let op = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p));
                let text = match op {
                    Some(p) => (*p).to_string(),
                    None => (c as char).to_string(),
                };
                i += text.len();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    Ok(toks)
}

/// Length and newline count of the plain string literal starting at
/// `b[0] == '"'`.
fn lex_string(b: &[u8], line: usize) -> Result<(usize, usize), String> {
    let mut j = 1;
    let mut newlines = 0;
    while j < b.len() {
        match b[j] {
            b'"' => return Ok((j + 1, newlines)),
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    Err(format!("line {line}: unterminated string literal"))
}

/// If `b` starts a raw string (`r"…"`, `r#"…"#`), byte string (`b"…"`),
/// raw byte string (`br#"…"#`), or byte char (`b'…'`), its total length
/// and newline count. `None` means "not one of those" (e.g. `r#ident`, or
/// a plain identifier starting with r/b), which the caller lexes as an
/// identifier.
#[allow(clippy::type_complexity)]
fn raw_or_byte_string_len(b: &[u8]) -> Option<Result<(usize, usize), String>> {
    let mut j = 0;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') {
            // Byte char literal b'…'.
            let mut k = j + 1;
            while k < b.len() && b[k] != b'\'' {
                if b[k] == b'\\' {
                    k += 1;
                }
                k += 1;
            }
            if k >= b.len() {
                return Some(Err("unterminated byte char".to_string()));
            }
            return Some(Ok((k + 1, 0)));
        }
        if b.get(j) == Some(&b'"') {
            // Byte string b"…": same shape as a plain string.
            return Some(lex_string(&b[j..], 0).map(|(len, nl)| (j + len, nl)));
        }
        if b.get(j) != Some(&b'r') {
            return None;
        }
        j += 1;
    } else if b[j] == b'r' {
        j += 1;
    } else {
        return None;
    }
    // Raw (byte) string: zero or more '#' then '"'.
    let hashes_start = j;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    let hashes = j - hashes_start;
    if b.get(j) != Some(&b'"') {
        return None; // r#ident or identifier starting with r/b
    }
    j += 1;
    let mut newlines = 0;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let close = &b[j + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&c| c == b'#') {
                return Some(Ok((j + 1 + hashes, newlines)));
            }
        }
        j += 1;
    }
    Some(Err("unterminated raw string".to_string()))
}

/// Parses tokens into delimiter trees. Tolerant of stray closers (they
/// become leaves) so a half-written fixture still parses.
pub fn parse_trees(toks: Vec<Tok>) -> Vec<Tree> {
    let mut stack: Vec<(char, usize, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in toks {
        let is_open = tok.kind == TokKind::Punct && matches!(tok.text.as_str(), "(" | "[" | "{");
        let close_of = |c: &str| match c {
            ")" => Some('('),
            "]" => Some('['),
            "}" => Some('{'),
            _ => None,
        };
        if is_open {
            let delim = tok.text.chars().next().unwrap_or('(');
            stack.push((delim, tok.line, std::mem::take(&mut top)));
            continue;
        }
        if tok.kind == TokKind::Punct {
            if let Some(open) = close_of(&tok.text) {
                if stack.last().is_some_and(|(d, _, _)| *d == open) {
                    let (delim, line, parent) = stack.pop().unwrap_or(('(', 0, Vec::new()));
                    let children = std::mem::replace(&mut top, parent);
                    top.push(Tree::Group(Group {
                        delim,
                        line,
                        children,
                    }));
                    continue;
                }
            }
        }
        top.push(Tree::Leaf(tok));
    }
    // Unclosed groups: flatten back as if the closer were at EOF.
    while let Some((delim, line, parent)) = stack.pop() {
        let children = std::mem::replace(&mut top, parent);
        top.push(Tree::Group(Group {
            delim,
            line,
            children,
        }));
    }
    top
}

/// Lexes and parses a whole source file.
///
/// # Errors
///
/// Propagates lexer errors ([`lex`]).
pub fn parse_file(src: &str) -> Result<Vec<Tree>, String> {
    Ok(parse_trees(lex(src)?))
}

/// True if the attribute group `#[…]` marks test-only code: `#[test]`,
/// `#[cfg(test)]`, or any `cfg` whose predicate mentions `test` (e.g.
/// `#[cfg(all(test, feature = "x"))]`).
fn attr_is_test(attr: &Group) -> bool {
    let mut toks = Vec::new();
    flatten(&attr.children, &mut toks);
    if toks.first().is_some_and(|t| t.text == "test") {
        return true;
    }
    toks.first().is_some_and(|t| t.text == "cfg") && toks.iter().any(|t| t.text == "test")
}

/// Flattens trees to leaves depth-first (groups contribute their children
/// but not their delimiters).
fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<&'a Tok>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok),
            Tree::Group(g) => flatten(&g.children, out),
        }
    }
}

/// Walks every token stream of non-test code: the top level and the
/// children of every group, except items annotated `#[test]`/`#[cfg(test)]`
/// (the whole item — attribute through body — is skipped). The callback
/// receives each stream once.
pub fn walk_non_test<'a>(trees: &'a [Tree], visit: &mut dyn FnMut(&'a [Tree])) {
    visit(trees);
    let mut i = 0;
    while i < trees.len() {
        // `#[test-ish]` attribute: skip tokens up to and including the
        // item's body (first `{…}` group) or its `;` terminator.
        if trees[i].is_punct("#") {
            if let Some(attr) = trees.get(i + 1).and_then(|t| t.group('[')) {
                if attr_is_test(attr) {
                    i += 2;
                    while i < trees.len() {
                        let t = &trees[i];
                        i += 1;
                        if t.is_punct(";") || t.group('{').is_some() {
                            break;
                        }
                    }
                    continue;
                }
                // Non-test attribute: step past it, scan the item.
                i += 2;
                continue;
            }
        }
        if let Tree::Group(g) = &trees[i] {
            walk_non_test(&g.children, visit);
        }
        i += 1;
    }
}

/// A lint finding inside one file: (1-based line, message).
pub type Finding = (usize, String);

/// Panic-API lint over parsed trees: flags `.unwrap()` / `.expect(…)`
/// method calls in non-test code. Unlike the string scanner, this skips
/// test *items* wherever they appear and keeps scanning the rest of the
/// file, never matches inside comments or string literals, and descends
/// into `#[cfg(feature = …)]`-gated branches.
///
/// # Errors
///
/// Propagates lexer errors.
pub fn scan_panics(src: &str) -> Result<Vec<Finding>, String> {
    let trees = parse_file(src)?;
    let mut findings = Vec::new();
    walk_non_test(&trees, &mut |stream| {
        for w in stream.windows(3) {
            if w[0].is_punct(".")
                && (w[1].is_ident("unwrap") || w[1].is_ident("expect"))
                && w[2].group('(').is_some()
            {
                let name = w[1].leaf().map(|t| t.text.as_str()).unwrap_or("unwrap");
                findings.push((
                    w[1].line(),
                    format!(
                        "`.{name}(…)` in a per-cycle hot path; use Option/Result \
                         flow or an assert naming the invariant"
                    ),
                ));
            }
        }
    });
    findings.sort();
    Ok(findings)
}

/// Wall-clock lint over parsed trees: flags `Instant`, `SystemTime`, and
/// `std::time` paths in non-test code, anywhere in the file.
///
/// # Errors
///
/// Propagates lexer errors.
pub fn scan_wallclock(src: &str) -> Result<Vec<Finding>, String> {
    let trees = parse_file(src)?;
    let mut findings = Vec::new();
    walk_non_test(&trees, &mut |stream| {
        for (i, t) in stream.iter().enumerate() {
            let hit = if t.is_ident("Instant") || t.is_ident("SystemTime") {
                t.leaf().map(|l| l.text.clone())
            } else if t.is_ident("time")
                && i >= 2
                && stream[i - 1].is_punct("::")
                && stream[i - 2].is_ident("std")
            {
                Some("std::time".to_string())
            } else {
                None
            };
            if let Some(name) = hit {
                findings.push((
                    t.line(),
                    format!(
                        "wall-clock source `{name}` in deterministic tracing code; \
                         stamp with the simulated cycle instead"
                    ),
                ));
            }
        }
    });
    findings.sort();
    Ok(findings)
}

/// Extracts the names of `&mut self` methods from `impl Router { … }`
/// blocks in `router.rs` source — the helper methods through which router
/// state can be mutated. Keeping this extracted (not hard-coded) means a
/// newly added mutating method is confined the moment it exists.
///
/// # Errors
///
/// Propagates lexer errors.
pub fn router_mut_methods(router_src: &str) -> Result<BTreeSet<String>, String> {
    let trees = parse_file(router_src)?;
    let mut methods = BTreeSet::new();
    let mut i = 0;
    while i < trees.len() {
        if trees[i].is_ident("impl") && trees.get(i + 1).is_some_and(|t| t.is_ident("Router")) {
            if let Some(body) = trees.get(i + 2).and_then(|t| t.group('{')) {
                collect_mut_self_fns(&body.children, &mut methods);
            }
        }
        i += 1;
    }
    Ok(methods)
}

/// Collects `fn name(&mut self, …)` names from an impl body stream.
fn collect_mut_self_fns(stream: &[Tree], out: &mut BTreeSet<String>) {
    let mut i = 0;
    while i + 2 < stream.len() {
        if stream[i].is_ident("fn") {
            let name = stream[i + 1].leaf().filter(|t| t.kind == TokKind::Ident);
            // Generics between name and params are rare here; find the
            // first paren group after the name.
            let mut j = i + 2;
            while j < stream.len() && stream[j].group('(').is_none() {
                j += 1;
            }
            if let (Some(name), Some(params)) = (name, stream.get(j).and_then(|t| t.group('('))) {
                let mut toks = Vec::new();
                flatten(&params.children, &mut toks);
                let sig: Vec<&str> = toks
                    .iter()
                    .filter(|t| t.kind != TokKind::Lifetime)
                    .take(3)
                    .map(|t| t.text.as_str())
                    .collect();
                if sig.len() >= 3 && sig[0] == "&" && sig[1] == "mut" && sig[2] == "self" {
                    out.insert(name.text.clone());
                }
            }
            i = j;
        }
        i += 1;
    }
}

/// Which mutation rules apply to a file in the confinement scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfinementRules {
    /// Flag direct writes to the listed `Router` fields.
    pub direct_writes: bool,
    /// Flag calls to `&mut self` `Router` methods (helper-routed
    /// mutations) and `&mut` borrows of router state.
    pub method_calls: bool,
}

/// Commit-confinement lint over parsed trees.
///
/// Flags, in non-test code, on receivers whose access chain roots at a
/// `router`/`routers` binding:
///
/// - direct field writes (`router.credits[d][v] -= 1`, `….sa_losers.clear()`)
///   when `rules.direct_writes` is on;
/// - calls to any name in `mut_methods` (`routers[n].accept(…)`) and
///   `&mut` borrows (`&mut routers[n]`) when `rules.method_calls` is on —
///   the mutation paths the old line scanner could not see.
///
/// # Errors
///
/// Propagates lexer errors.
pub fn scan_confinement(
    src: &str,
    fields: &[&str],
    mut_methods: &BTreeSet<String>,
    rules: ConfinementRules,
) -> Result<Vec<Finding>, String> {
    let trees = parse_file(src)?;
    let mut findings = Vec::new();
    walk_non_test(&trees, &mut |stream| {
        scan_confinement_stream(stream, fields, mut_methods, rules, &mut findings);
    });
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// True if the access chain ending just before `stream[dot]` (a `.`
/// leaf) roots at an ident named `router` or `routers`, skipping back
/// over `.field` and `[index]` links (e.g. `self.routers[i]`,
/// `net.routers[up.0]`).
fn chain_roots_at_router(stream: &[Tree], dot: usize) -> bool {
    let mut i = dot; // index of the `.` token; look left of it
    loop {
        if i == 0 {
            return false;
        }
        let prev = &stream[i - 1];
        if prev.group('[').is_some() {
            i -= 1;
            continue;
        }
        match prev.leaf() {
            Some(t) if t.kind == TokKind::Ident => {
                if t.text == "router" || t.text == "routers" {
                    return true;
                }
                // Continue left through `name .` links.
                if i >= 2 && stream[i - 2].is_punct(".") {
                    i -= 2;
                    continue;
                }
                return false;
            }
            Some(t) if t.kind == TokKind::Literal => {
                // Tuple index, e.g. `up.0` inside `routers[up.0]` never
                // appears at this level; a literal chain link like
                // `pair.0.credits` — keep walking left.
                if i >= 2 && stream[i - 2].is_punct(".") {
                    i -= 2;
                    continue;
                }
                return false;
            }
            _ => return false,
        }
    }
}

/// Scans one token stream for confinement violations.
fn scan_confinement_stream(
    stream: &[Tree],
    fields: &[&str],
    mut_methods: &BTreeSet<String>,
    rules: ConfinementRules,
    findings: &mut Vec<Finding>,
) {
    for i in 0..stream.len() {
        if !stream[i].is_punct(".") {
            // `&mut router…` borrow escape: a `&mut` whose operand roots
            // at a router binding (type positions spell `&mut Router` /
            // `&mut [Router]`, which do not match the binding names).
            if rules.method_calls
                && stream[i].is_punct("&")
                && stream.get(i + 1).is_some_and(|t| t.is_ident("mut"))
                && stream
                    .get(i + 2)
                    .is_some_and(|t| t.is_ident("router") || t.is_ident("routers"))
            {
                findings.push((
                    stream[i].line(),
                    "aliased `&mut` borrow of router state outside the commit pass".to_string(),
                ));
            }
            continue;
        }
        if !chain_roots_at_router(stream, i) {
            continue;
        }
        let Some(name) = stream.get(i + 1).and_then(Tree::leaf) else {
            continue;
        };
        if name.kind != TokKind::Ident {
            continue;
        }
        let is_call = stream.get(i + 2).is_some_and(|t| t.group('(').is_some());
        if rules.method_calls && is_call && mut_methods.contains(&name.text) {
            findings.push((
                name.line,
                format!(
                    "Router::{}(…) mutates router state outside the commit pass; \
                     route the mutation through crates/noc/src/commit.rs",
                    name.text
                ),
            ));
            continue;
        }
        if rules.direct_writes && !is_call && fields.contains(&name.text.as_str()) {
            // Mutation iff the rest of this statement assigns through the
            // access or calls an in-place mutator on it.
            if statement_mutates(&stream[i + 2..], mut_methods) {
                findings.push((
                    name.line,
                    format!(
                        "Router field `{}` mutated outside the commit pass; \
                         route the write through crates/noc/src/commit.rs",
                        name.text
                    ),
                ));
            }
        }
    }
}

/// In-place container mutators (superset of the old string list; exact
/// token match, so `.clear()` in a string no longer counts).
const CONTAINER_MUTATORS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "clear",
    "extend",
    "extend_from_slice",
    "insert",
    "remove",
    "drain",
    "truncate",
    "swap",
    "fill",
    "retain",
    "sort",
    "sort_unstable",
    "resize",
];

/// Whether the statement tail after a field access writes to it: an
/// assignment operator before the statement ends (`;`, `,`, or a brace
/// group), or a chained in-place mutator call.
fn statement_mutates(tail: &[Tree], mut_methods: &BTreeSet<String>) -> bool {
    for (i, t) in tail.iter().enumerate() {
        if t.is_punct(";") || t.is_punct(",") || t.group('{').is_some() {
            return false;
        }
        if let Some(tok) = t.leaf() {
            if tok.kind == TokKind::Punct && ASSIGN_OPS.contains(&tok.text.as_str()) {
                return true;
            }
            if tok.kind == TokKind::Ident
                && i >= 1
                && tail[i - 1].is_punct(".")
                && tail.get(i + 1).is_some_and(|n| n.group('(').is_some())
                && (CONTAINER_MUTATORS.contains(&tok.text.as_str())
                    || mut_methods.contains(&tok.text))
            {
                return true;
            }
        }
    }
    false
}

/// Interior-mutability types that would let "pure" compute code smuggle
/// writes past the phase split.
const INTERIOR_MUTABILITY: &[&str] = &[
    "RefCell",
    "Cell",
    "UnsafeCell",
    "Mutex",
    "RwLock",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
];

/// Compute-phase purity lint: in non-test code, flags interior-mutability
/// type names, and — if `check_compute_router_sig` — verifies that
/// `compute_router` takes `router: &Router` (shared, not `&mut`).
/// Mutating-method calls and `&mut` borrows are covered by
/// [`scan_confinement`] with `method_calls` on.
///
/// # Errors
///
/// Propagates lexer errors.
pub fn scan_compute_purity(
    src: &str,
    check_compute_router_sig: bool,
) -> Result<Vec<Finding>, String> {
    let trees = parse_file(src)?;
    let mut findings = Vec::new();
    walk_non_test(&trees, &mut |stream| {
        for t in stream {
            if let Some(tok) = t.leaf() {
                if tok.kind == TokKind::Ident && INTERIOR_MUTABILITY.contains(&tok.text.as_str()) {
                    findings.push((
                        tok.line,
                        format!(
                            "interior-mutability type `{}` in phase-split kernel code; \
                             all mutation must flow through the commit pass",
                            tok.text
                        ),
                    ));
                }
            }
        }
    });
    if check_compute_router_sig {
        if let Some(msg) = compute_router_sig_violation(&trees) {
            findings.push(msg);
        }
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Checks that `fn compute_router(router: &Router, …)` takes the router
/// by shared reference. Returns a finding if the parameter is `&mut`, or
/// if the function/parameter cannot be found (the contract must stay
/// checkable).
fn compute_router_sig_violation(trees: &[Tree]) -> Option<Finding> {
    let mut result = Some((
        1,
        "fn compute_router(router: &Router, …) not found; the purity \
         contract is no longer checkable"
            .to_string(),
    ));
    let mut i = 0;
    while i + 2 < trees.len() {
        if trees[i].is_ident("fn") && trees[i + 1].is_ident("compute_router") {
            let mut j = i + 2;
            while j < trees.len() && trees[j].group('(').is_none() {
                j += 1;
            }
            if let Some(params) = trees.get(j).and_then(|t| t.group('(')) {
                let mut toks = Vec::new();
                flatten(&params.children, &mut toks);
                for (k, t) in toks.iter().enumerate() {
                    if t.text == "router" && toks.get(k + 1).is_some_and(|c| c.text == ":") {
                        let rest: Vec<&str> = toks[k + 2..]
                            .iter()
                            .filter(|t| t.kind != TokKind::Lifetime)
                            .take(2)
                            .map(|t| t.text.as_str())
                            .collect();
                        result = if rest == ["&", "mut"] {
                            Some((
                                t.line,
                                "compute_router takes `router: &mut …`; the compute \
                                 phase must take the router by shared reference"
                                    .to_string(),
                            ))
                        } else {
                            None
                        };
                        return result;
                    }
                }
            }
        }
        i += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn lexer_strips_comments_and_strings() {
        let src = r##"
            // line .unwrap()
            /* block /* nested */ .unwrap() */
            let s = "string .unwrap()";
            let r = r#"raw .unwrap()"#;
            let b = b"bytes .unwrap()";
            real.unwrap();
        "##;
        let findings = scan_panics(src).expect("parses");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].0, 7);
    }

    #[test]
    fn lexer_distinguishes_lifetimes_from_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").expect("lexes");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn lexer_is_greedy_on_operators() {
        let toks = lex("a ..= b == c => d").expect("lexes");
        let puncts: Vec<String> = toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec!["..=", "==", "=>"]);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert!(idents("let r#match = 1;").contains(&"match".to_string()));
    }

    #[test]
    fn trees_balance_delimiters() {
        let trees = parse_file("fn f(a: [u8; 4]) { g(a[0]); }").expect("parses");
        // fn, f, (…), {…}
        assert_eq!(trees.len(), 4);
        assert!(trees[3].group('{').is_some());
    }

    #[test]
    fn scanning_continues_past_a_test_module() {
        // The old line scanner stopped at the first `#[cfg(test)]` and
        // missed everything after it; the tree walk skips only the item.
        let src = "
            #[cfg(test)]
            mod tests { fn t() { x.unwrap(); } }
            fn after() { y.unwrap(); }
        ";
        let findings = scan_panics(src).expect("parses");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, 4, "the post-test-mod call is caught");
    }

    #[test]
    fn cfg_feature_gated_code_is_scanned() {
        let src = "
            #[cfg(feature = \"faults\")]
            fn gated() { z.unwrap(); }
        ";
        assert_eq!(scan_panics(src).expect("parses").len(), 1);
    }

    #[test]
    fn test_attribute_skips_single_fn() {
        let src = "
            #[test]
            fn t() { x.unwrap(); }
            fn hot() { y.expect(\"msg\"); }
        ";
        let findings = scan_panics(src).expect("parses");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("expect"));
    }

    #[test]
    fn wallclock_found_after_test_module() {
        let src = "
            #[cfg(test)]
            mod tests {}
            fn f() { let t = std::time::Instant::now(); }
        ";
        let findings = scan_wallclock(src).expect("parses");
        // `std::time` and `Instant` both flagged on line 4.
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.0 == 4));
    }

    #[test]
    fn router_mut_methods_extracts_mut_self_only() {
        let src = "
            impl Router {
                pub fn node(&self) -> NodeId { self.node }
                pub fn accept(&mut self, port: usize) {}
                pub(crate) fn reshape_packet(&mut self, n: usize) -> isize { 0 }
                pub fn free_slots(&self, p: usize) -> usize { 0 }
            }
            impl Other {
                pub fn mutator(&mut self) {}
            }
        ";
        let methods = router_mut_methods(src).expect("parses");
        let names: Vec<&str> = methods.iter().map(String::as_str).collect();
        assert_eq!(names, vec!["accept", "reshape_packet"]);
    }

    const ALL_RULES: ConfinementRules = ConfinementRules {
        direct_writes: true,
        method_calls: true,
    };

    fn fields() -> &'static [&'static str] {
        &["inputs", "out_alloc", "credits", "rr_sa", "sa_losers"]
    }

    fn methods() -> BTreeSet<String> {
        ["accept", "return_credit", "set_locked"]
            .into_iter()
            .map(String::from)
            .collect()
    }

    #[test]
    fn confinement_flags_writes_not_reads() {
        let src = "
            fn compute(router: &Router) {
                let snapshot = router.out_alloc.clone();
                if router.credits[0][1] >= 8 || router.credits[0][1] != 0 {}
                let o = Outcome { rr_sa: router.rr_sa };
                router.credits[0][1] -= 1;
                routers[next].inputs[0][1].state = VcState::Idle;
                router.sa_losers.clear();
            }
        ";
        let lines: Vec<usize> = scan_confinement(src, fields(), &methods(), ALL_RULES)
            .expect("parses")
            .into_iter()
            .map(|f| f.0)
            .collect();
        assert_eq!(lines, vec![6, 7, 8]);
    }

    #[test]
    fn confinement_catches_helper_method_mutation() {
        // The defect class the old string scanner missed: no field name
        // appears, the write is routed through a &mut self method.
        let src = "
            fn sneak(routers: &mut [Router], dep: &Departure) {
                routers[dep.next].accept(dep.port, dep.vc, dep.flit);
            }
        ";
        let findings = scan_confinement(src, fields(), &methods(), ALL_RULES).expect("parses");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("Router::accept"));
    }

    #[test]
    fn confinement_catches_mut_borrow_escape() {
        let src = "
            fn escape(routers: &mut [Router]) {
                helper(&mut routers[0]);
            }
        ";
        let findings = scan_confinement(src, fields(), &methods(), ALL_RULES).expect("parses");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("aliased `&mut`"));
    }

    #[test]
    fn confinement_ignores_type_positions_and_locals() {
        let src = "
            fn ok(routers: &mut [Router], out: &mut Vec<u32>) {
                let creds = router.credits[0][1];
                out.push(creds as u32);
            }
        ";
        assert_eq!(
            scan_confinement(src, fields(), &methods(), ALL_RULES).expect("parses"),
            Vec::new()
        );
    }

    #[test]
    fn confinement_catches_cfg_hidden_branch_after_test_mod() {
        // Both blind spots at once: the mutation hides behind a feature
        // cfg *after* a test module.
        let src = "
            #[cfg(test)]
            mod tests {}
            #[cfg(feature = \"exotic\")]
            fn hidden(router: &mut Router) {
                router.credits[0][0] += 1;
            }
        ";
        let findings = scan_confinement(src, fields(), &methods(), ALL_RULES).expect("parses");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, 6);
    }

    #[test]
    fn purity_flags_interior_mutability() {
        let src = "fn f() { let c: RefCell<u32> =\n    RefCell::new(0); }";
        let findings = scan_compute_purity(src, false).expect("parses");
        assert_eq!(findings.len(), 2, "declaration and constructor");
    }

    #[test]
    fn purity_checks_compute_router_signature() {
        let good = "pub fn compute_router(router: &Router, now: u64) {}";
        assert_eq!(scan_compute_purity(good, true).expect("parses"), Vec::new());
        let bad = "pub fn compute_router(router: &mut Router, now: u64) {}";
        let findings = scan_compute_purity(bad, true).expect("parses");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("&mut"));
    }

    /// Caller-provided scratch arenas are the sanctioned way for the
    /// compute phase to avoid per-cycle allocation: extra `&mut`
    /// out-params are fine as long as the *router* stays a shared
    /// reference (the purity contract is about router state, not about
    /// where the results are written).
    #[test]
    fn purity_accepts_mut_scratch_out_params() {
        let arena = "pub fn compute_router(router: &Router, now: u64, \
                     scratch: &mut ComputeScratch, out: &mut RouterOutcome) {}";
        assert_eq!(
            scan_compute_purity(arena, true).expect("parses"),
            Vec::new()
        );
    }
}
