//! Bounded explicit-state exploration with deterministic parallelism.
//!
//! [`explore`] walks every reachable state of a [`TransitionSystem`] up
//! to a depth bound, deduplicating by canonical encoding, checking the
//! system's invariants on each state exactly once, and recording parent
//! pointers so any violation can be replayed as a schedule of action
//! labels from an initial state.
//!
//! The search is breadth-first and layer-synchronized: each frontier is
//! split into contiguous chunks that workers expand in parallel against
//! a read-only view of the visited set, and the per-chunk results are
//! merged back **in chunk order**. Every state is therefore discovered
//! by the same (lowest-BFS-order) parent and expanded exactly once, so
//! the state count, transition count, depth, and the rendered report are
//! byte-identical for any worker count — the property pinned by
//! `tests/determinism.rs`.

use std::collections::HashMap;
use std::thread;

/// An abstract transition system the explorer can walk.
///
/// Implementations must be deterministic: `enabled` and `apply` may
/// depend only on the state, and `encode` must be a canonical injective
/// encoding (equal encodings ⇔ equal states).
pub trait TransitionSystem: Sync {
    /// Model state. Cloned freely; keep it compact. (`Sync` because
    /// frontier workers read parent states from the shared arena.)
    type State: Clone + Send + Sync;

    /// The initial states (the worklist seeds).
    fn initial(&self) -> Vec<Self::State>;

    /// Human-readable labels of the actions enabled in `s`, in a fixed
    /// order. `apply(s, i)` executes the action labelled `enabled(s)[i]`.
    fn enabled(&self, s: &Self::State) -> Vec<String>;

    /// Executes enabled action `i` on `s`, returning the successor.
    fn apply(&self, s: &Self::State, i: usize) -> Self::State;

    /// Invariant violations in `s` (empty when the state is healthy).
    fn check(&self, s: &Self::State) -> Vec<String>;

    /// True if `s` is allowed to have no enabled actions; a state that
    /// is neither quiescent nor has successors is reported as stuck.
    fn quiescent(&self, s: &Self::State) -> bool;

    /// Canonical byte encoding used for deduplication.
    fn encode(&self, s: &Self::State) -> Vec<u8>;
}

/// Exploration bounds and parallelism.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum BFS depth (number of actions from an initial state).
    pub max_depth: usize,
    /// Hard cap on deduplicated states (guards against blow-up; the
    /// report is marked truncated when hit).
    pub max_states: usize,
    /// Worker threads per layer. `1` is fully serial; any value yields
    /// byte-identical reports.
    pub workers: usize,
    /// Keep at most this many violations (each with its schedule).
    pub max_violations: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            max_depth: 64,
            max_states: 2_000_000,
            workers: 1,
            max_violations: 8,
        }
    }
}

/// One invariant violation with its replayable counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What was violated (one line per broken invariant in the state).
    pub messages: Vec<String>,
    /// Action labels from the initial state to the violating state.
    pub schedule: Vec<String>,
    /// BFS depth at which the violation occurred.
    pub depth: usize,
}

/// Result of a bounded exploration.
///
/// [`ExploreReport::render`] is deliberately free of wall-clock content
/// so the rendered text is byte-identical run-to-run; timing belongs to
/// the caller (the xtask JSON wrapper records it out-of-band).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Deduplicated states discovered (and checked).
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Deepest layer reached.
    pub max_depth_reached: usize,
    /// True if the depth or state bound cut the search short.
    pub truncated: bool,
    /// Violations found (capped at `max_violations`), in BFS order.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// True if no invariant was violated in the explored space.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic text rendering: summary line plus one replayable
    /// schedule block per violation.
    pub fn render(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{name}: {} states, {} transitions, depth {}{}",
            self.states,
            self.transitions,
            self.max_depth_reached,
            if self.truncated {
                " (bounded: search truncated)"
            } else {
                " (complete within bounds)"
            },
        );
        for (i, v) in self.violations.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}: counterexample {} at depth {}:",
                i + 1,
                v.depth
            );
            for m in &v.messages {
                let _ = writeln!(out, "{name}:   violated: {m}");
            }
            for (step, action) in v.schedule.iter().enumerate() {
                let _ = writeln!(out, "{name}:   step {:>3}: {action}", step + 1);
            }
        }
        out
    }
}

/// Arena entry: parent index, action index taken from the parent, and
/// the state itself (kept so schedules can re-derive action labels).
struct Node<S> {
    parent: u32,
    action: u16,
    state: S,
    depth: u32,
}

const NO_PARENT: u32 = u32::MAX;

/// Explores `sys` breadth-first within `opts` bounds.
///
/// Deterministic by construction: see the module docs. Violations are
/// reported in BFS discovery order; each carries the schedule of action
/// labels reconstructed from the arena's parent chain.
pub fn explore<T: TransitionSystem>(sys: &T, opts: &ExploreOptions) -> ExploreReport {
    let workers = opts.workers.max(1);
    let mut arena: Vec<Node<T::State>> = Vec::new();
    let mut visited: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut transitions: u64 = 0;
    let mut truncated = false;
    let mut max_depth_reached = 0usize;

    let mut frontier: Vec<u32> = Vec::new();
    for s in sys.initial() {
        let enc = sys.encode(&s);
        if visited.contains_key(&enc) {
            continue;
        }
        let id = arena.len() as u32;
        visited.insert(enc, id);
        arena.push(Node {
            parent: NO_PARENT,
            action: 0,
            state: s,
            depth: 0,
        });
        frontier.push(id);
    }
    for &id in &frontier {
        check_node(sys, &arena, id, opts, &mut violations);
    }

    let mut depth = 0usize;
    while !frontier.is_empty() {
        if depth >= opts.max_depth {
            truncated = true;
            break;
        }
        depth += 1;
        // Expand the frontier in parallel chunks. Workers only read the
        // arena and produce (parent, action, child, encoding) records;
        // all arena/visited writes happen in the in-order merge below.
        let chunk = frontier.len().div_ceil(workers);
        let mut produced: Vec<Expanded<T::State>> = if workers == 1 {
            vec![expand_chunk(sys, &arena, &frontier)]
        } else {
            let arena_ref = &arena;
            thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|ids| scope.spawn(move || expand_chunk(sys, arena_ref, ids)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(v) => v,
                        Err(e) => std::panic::resume_unwind(e),
                    })
                    .collect()
            })
        };
        let mut next_frontier = Vec::new();
        'merge: for batch in produced.iter_mut() {
            for (parent, action, child, enc) in batch.drain(..) {
                transitions += 1;
                if visited.contains_key(&enc) {
                    continue;
                }
                if arena.len() >= opts.max_states {
                    truncated = true;
                    break 'merge;
                }
                let id = arena.len() as u32;
                visited.insert(enc, id);
                arena.push(Node {
                    parent,
                    action,
                    state: child,
                    depth: depth as u32,
                });
                next_frontier.push(id);
                check_node(sys, &arena, id, opts, &mut violations);
            }
        }
        if !next_frontier.is_empty() {
            max_depth_reached = depth;
        }
        frontier = next_frontier;
    }

    ExploreReport {
        states: arena.len() as u64,
        transitions,
        max_depth_reached,
        truncated,
        violations,
    }
}

/// Expands one contiguous frontier chunk; pure with respect to shared
/// state (reads the arena, writes nothing).
/// One worker's expansion records: (parent id, action index, successor
/// state, canonical encoding).
type Expanded<S> = Vec<(u32, u16, S, Vec<u8>)>;

fn expand_chunk<T: TransitionSystem>(
    sys: &T,
    arena: &[Node<T::State>],
    ids: &[u32],
) -> Expanded<T::State> {
    let mut out = Vec::new();
    for &id in ids {
        let state = &arena[id as usize].state;
        let n = sys.enabled(state).len();
        for action in 0..n {
            let child = sys.apply(state, action);
            let enc = sys.encode(&child);
            out.push((id, action as u16, child, enc));
        }
    }
    out
}

/// Checks invariants and stuck-freedom on a freshly inserted node,
/// recording a violation (with its replay schedule) if anything fails.
fn check_node<T: TransitionSystem>(
    sys: &T,
    arena: &[Node<T::State>],
    id: u32,
    opts: &ExploreOptions,
    violations: &mut Vec<Violation>,
) {
    if violations.len() >= opts.max_violations {
        return;
    }
    let node = &arena[id as usize];
    let mut messages = sys.check(&node.state);
    if sys.enabled(&node.state).is_empty() && !sys.quiescent(&node.state) {
        messages.push("stuck state: no action enabled, system not quiescent".to_string());
    }
    if messages.is_empty() {
        return;
    }
    violations.push(Violation {
        messages,
        schedule: schedule_of(sys, arena, id),
        depth: node.depth as usize,
    });
}

/// Reconstructs the action-label schedule from an initial state to
/// `id` by walking parent pointers and re-deriving each label from the
/// parent's enabled list.
fn schedule_of<T: TransitionSystem>(sys: &T, arena: &[Node<T::State>], id: u32) -> Vec<String> {
    let mut rev: Vec<(u32, u16)> = Vec::new();
    let mut cur = id;
    while arena[cur as usize].parent != NO_PARENT {
        let node = &arena[cur as usize];
        rev.push((node.parent, node.action));
        cur = node.parent;
    }
    rev.reverse();
    rev.into_iter()
        .map(|(parent, action)| {
            let labels = sys.enabled(&arena[parent as usize].state);
            labels
                .get(action as usize)
                .cloned()
                .unwrap_or_else(|| format!("<action #{action}>"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter system: increment/decrement on [0, limit]; invariant
    /// `value != poison`; quiescent only at 0.
    struct Counter {
        limit: u8,
        poison: Option<u8>,
    }

    impl TransitionSystem for Counter {
        type State = u8;

        fn initial(&self) -> Vec<u8> {
            vec![0]
        }

        fn enabled(&self, s: &u8) -> Vec<String> {
            let mut acts = Vec::new();
            if *s < self.limit {
                acts.push(format!("inc({s})"));
            }
            if *s > 0 {
                acts.push(format!("dec({s})"));
            }
            acts
        }

        fn apply(&self, s: &u8, i: usize) -> u8 {
            let acts = self.enabled(s);
            if acts[i].starts_with("inc") {
                s + 1
            } else {
                s - 1
            }
        }

        fn check(&self, s: &u8) -> Vec<String> {
            match self.poison {
                Some(p) if *s == p => vec![format!("hit poison value {p}")],
                _ => Vec::new(),
            }
        }

        fn quiescent(&self, s: &u8) -> bool {
            *s == 0
        }

        fn encode(&self, s: &u8) -> Vec<u8> {
            vec![*s]
        }
    }

    #[test]
    fn explores_full_space_and_stays_clean() {
        let sys = Counter {
            limit: 10,
            poison: None,
        };
        let report = explore(&sys, &ExploreOptions::default());
        assert!(report.clean());
        assert_eq!(report.states, 11);
        assert!(!report.truncated);
        assert_eq!(report.max_depth_reached, 10);
    }

    #[test]
    fn finds_violation_with_minimal_schedule() {
        let sys = Counter {
            limit: 10,
            poison: Some(3),
        };
        let report = explore(&sys, &ExploreOptions::default());
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.depth, 3, "BFS finds the shortest counterexample");
        assert_eq!(v.schedule, vec!["inc(0)", "inc(1)", "inc(2)"]);
        assert_eq!(v.messages, vec!["hit poison value 3"]);
    }

    #[test]
    fn depth_bound_truncates() {
        let sys = Counter {
            limit: 200,
            poison: None,
        };
        let opts = ExploreOptions {
            max_depth: 5,
            ..ExploreOptions::default()
        };
        let report = explore(&sys, &opts);
        assert!(report.truncated);
        assert_eq!(report.states, 6);
    }

    #[test]
    fn report_is_identical_across_worker_counts() {
        let sys = Counter {
            limit: 50,
            poison: Some(37),
        };
        let base = explore(
            &sys,
            &ExploreOptions {
                workers: 1,
                ..ExploreOptions::default()
            },
        );
        for workers in [2, 4, 7] {
            let parallel = explore(
                &sys,
                &ExploreOptions {
                    workers,
                    ..ExploreOptions::default()
                },
            );
            assert_eq!(base, parallel, "{workers} workers diverged");
            assert_eq!(base.render("test"), parallel.render("test"));
        }
    }

    /// Stuck detection: a system whose only state has no actions and is
    /// not quiescent must be flagged.
    struct Dead;

    impl TransitionSystem for Dead {
        type State = ();

        fn initial(&self) -> Vec<()> {
            vec![()]
        }

        fn enabled(&self, _: &()) -> Vec<String> {
            Vec::new()
        }

        fn apply(&self, _: &(), _: usize) {}

        fn check(&self, _: &()) -> Vec<String> {
            Vec::new()
        }

        fn quiescent(&self, _: &()) -> bool {
            false
        }

        fn encode(&self, _: &()) -> Vec<u8> {
            Vec::new()
        }
    }

    #[test]
    fn stuck_states_are_reported() {
        let report = explore(&Dead, &ExploreOptions::default());
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].messages[0].contains("stuck"));
    }
}
