#![warn(missing_docs)]

//! Static analyses for the DISCO reproduction, run via `cargo xtask
//! verify` (and re-run by CI).
//!
//! Six passes, each usable as a library:
//!
//! - [`cdg`] — Dally–Seitz channel-dependency-graph deadlock analysis
//!   over any [`disco_noc::Topology`], its routing relation (with the
//!   wrapped shapes' dateline VC narrowing), and DISCO's VC-locking
//!   rule.
//! - [`protocol`] — MOESI transition-table extraction from the live
//!   directory engine plus totality/reachability checking, the `Msg`
//!   tag-encoding roundtrip check, and the op → virtual-network class
//!   mapping composed with the CDG results.
//! - [`model`] + [`explorer`] — bounded model checking: every delivery
//!   interleaving of the coherence protocol (driving the live
//!   `Directory`) explored to a depth bound, with counterexamples as
//!   replayable message schedules.
//! - [`credits`] — symbolic credit/buffer conservation proof over the
//!   router pipeline's operation set, plus a live-network conformance
//!   check.
//! - [`ast`] — a Rust lexer/token-tree layer giving AST-grade lints
//!   (mutation through helper methods, `#[cfg]`-hidden branches,
//!   aliased `&mut`) on top of —
//! - [`lints`] — the lint pass: panic-API-free per-cycle hot paths,
//!   full stats surfacing, commit confinement, wall-clock freedom, and
//!   fault-kind coverage.
//!
//! ```
//! use disco_noc::topology::{Torus, TopologySpec};
//! use disco_verify::cdg::{analyze, CdgOptions};
//!
//! let config = disco_noc::NocConfig { vcs: 4, ..disco_noc::NocConfig::default() };
//! let opts = CdgOptions::from_config(&config);
//! assert!(analyze(&Torus::new(4, 4).build(), &opts).is_deadlock_free());
//! ```

pub mod ast;
pub mod cdg;
pub mod credits;
pub mod explorer;
pub mod lints;
pub mod model;
pub mod protocol;
