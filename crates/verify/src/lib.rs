#![warn(missing_docs)]

//! Static analyses for the DISCO reproduction, run via `cargo xtask
//! verify` (and re-run by CI).
//!
//! Three passes, each usable as a library:
//!
//! - [`cdg`] — Dally–Seitz channel-dependency-graph deadlock analysis
//!   over the mesh, the routing relation, and DISCO's VC-locking rule.
//! - [`protocol`] — MOESI transition-table extraction from the live
//!   directory engine plus totality/reachability checking, and the `Msg`
//!   tag-encoding roundtrip check.
//! - [`lints`] — source-convention lints: panic-API-free per-cycle hot
//!   paths and full stats surfacing in `report.rs`.
//!
//! ```
//! use disco_noc::topology::Mesh;
//! use disco_verify::cdg::{analyze_mesh, CdgOptions};
//!
//! let opts = CdgOptions::from_config(&disco_noc::NocConfig::default());
//! assert!(analyze_mesh(&Mesh::new(4, 4), &opts).is_deadlock_free());
//! ```

pub mod cdg;
pub mod lints;
pub mod protocol;
