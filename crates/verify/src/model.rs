//! Bounded model checking of the coherence protocol over a reordering
//! message substrate.
//!
//! The model composes three actors around one cache line:
//!
//! - the **home directory**, executed by driving the *live*
//!   [`disco_cache::Directory`] — every model transition replays the
//!   abstract directory state onto a real `Directory` and runs the real
//!   `read`/`write`/`writeback`/`recall` code, so the checker verifies
//!   the shipped protocol engine, not a re-implementation;
//! - **N L1 controllers** running small scripted load/store sequences
//!   with MSHR-style pending-miss tracking and the live inval/fill
//!   poisoning rule;
//! - a **reordering substrate**: every in-flight message is deliverable
//!   at any time, so the explorer's interleavings cover all reorderings
//!   the multi-VC NoC could produce.
//!
//! [`explorer::explore`] walks every interleaving up to a bound and
//! checks, in each reachable state: the single-writer invariant, copy
//! accounting, bank freshness (outside the explicitly tracked
//! stale-writeback window), value-domain soundness (no fabricated data),
//! codec roundtrip of every value in flight (through the live
//! [`disco_compress::Codec`]s), and stuck-freedom.
//!
//! Exploring the default configuration flagged two protocol races that
//! were then fixed in the shipped code (see ARCHITECTURE.md "Model
//! checking & symbolic analyses"): the directory dropped the copy of an
//! owner whose re-read overtook its own writeback, and a forwarded
//! write failed to poison the target's in-flight fill.
//!
//! Two places where the model is *stricter* than the shipped simulator
//! (documented in ARCHITECTURE.md): the simulator resolves the
//! forward/own-store race and silent clean-line write hits through its
//! workload value oracle; the model instead defers a forward while its
//! target has a store outstanding and upgrades clean-line writes through
//! a `WriteReq`, so that data values flow only through protocol
//! messages and the invariants above are provable without an oracle.

use crate::explorer::TransitionSystem;
use disco_cache::addr::LineAddr;
use disco_cache::{CohAction, DirState, Directory};
use disco_compress::scheme::Compressor;
use disco_compress::{CacheLine, Codec};
use std::collections::HashMap;
use std::sync::Mutex;

/// The single line the model tracks (any address works; the protocol is
/// per-line).
const ADDR: LineAddr = LineAddr(0x44);

/// Abstract directory state with canonical (sorted) sharer lists.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MDir {
    /// No core holds the line.
    Uncached,
    /// Clean copies at the listed cores (sorted).
    Shared(Vec<u8>),
    /// A dirty owner plus clean sharers (sorted, owner excluded).
    Owned {
        /// Core with the dirty copy.
        owner: u8,
        /// Other cores with clean copies.
        sharers: Vec<u8>,
    },
}

impl MDir {
    /// The dirty owner, if the directory records one.
    fn owner(&self) -> Option<u8> {
        match self {
            MDir::Owned { owner, .. } => Some(*owner),
            _ => None,
        }
    }

    /// True if the directory accounts `core` as owner or sharer.
    fn accounts(&self, core: u8) -> bool {
        match self {
            MDir::Uncached => false,
            MDir::Shared(s) => s.contains(&core),
            MDir::Owned { owner, sharers } => *owner == core || sharers.contains(&core),
        }
    }

    /// Canonical byte encoding.
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MDir::Uncached => out.push(0),
            MDir::Shared(s) => {
                out.push(1);
                out.push(s.len() as u8);
                out.extend_from_slice(s);
            }
            MDir::Owned { owner, sharers } => {
                out.push(2);
                out.push(*owner);
                out.push(sharers.len() as u8);
                out.extend_from_slice(sharers);
            }
        }
    }

    fn from_live(state: &DirState) -> MDir {
        match state {
            DirState::Uncached => MDir::Uncached,
            DirState::Shared(s) => {
                let mut v: Vec<u8> = s.iter().map(|&c| c as u8).collect();
                v.sort_unstable();
                MDir::Shared(v)
            }
            DirState::Owned { owner, sharers } => {
                let mut v: Vec<u8> = sharers.iter().map(|&c| c as u8).collect();
                v.sort_unstable();
                MDir::Owned {
                    owner: *owner as u8,
                    sharers: v,
                }
            }
        }
    }
}

/// A directory action, abstracted from [`CohAction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MAct {
    /// The bank supplies data to `to`.
    Data {
        /// Requesting core.
        to: u8,
    },
    /// Forward the request to the dirty owner.
    Fwd {
        /// Current owner.
        owner: u8,
        /// Requesting core.
        to: u8,
    },
    /// Invalidate the copy at `core`.
    Inval {
        /// Core losing its copy.
        core: u8,
    },
}

/// The directory protocol engine the model runs against. The production
/// implementation is [`LiveDir`] (the shipped `Directory`); the mutation
/// suite substitutes defective engines to prove the checker has teeth.
pub trait DirEngine: Sync {
    /// A core reads the line.
    fn read(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>);
    /// A core requests ownership to write.
    fn write(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>);
    /// The owner writes the line back.
    fn writeback(&self, dir: &MDir, core: u8) -> MDir;
    /// The bank evicts the line; all copies are recalled.
    fn recall(&self, dir: &MDir) -> (MDir, Vec<MAct>);
}

/// Executes directory transitions on the live [`Directory`]: the
/// abstract state is replayed onto a fresh directory through its public
/// API, the real transition runs, and the resulting state and actions
/// are abstracted back. Memoized — the (state, op) domain is tiny.
#[derive(Default)]
pub struct LiveDir {
    memo: Mutex<HashMap<Vec<u8>, Transition>>,
}

/// A memoized directory transition: next state plus emitted actions.
type Transition = (MDir, Vec<MAct>);

/// Replays `dir` onto a fresh live `Directory` using only public API
/// calls (writes build ownership, reads attach sharers).
fn rebuild(dir: &MDir) -> Directory {
    let mut live = Directory::new();
    match dir {
        MDir::Uncached => {}
        MDir::Shared(sharers) => {
            for &s in sharers {
                live.read(ADDR, s as usize);
            }
        }
        MDir::Owned { owner, sharers } => {
            live.write(ADDR, *owner as usize);
            for &s in sharers {
                live.read(ADDR, s as usize);
            }
        }
    }
    live
}

impl LiveDir {
    /// Runs `op` against the live directory from abstract state `dir`.
    fn step(&self, dir: &MDir, op: u8, core: u8) -> (MDir, Vec<MAct>) {
        let mut key = vec![op, core];
        dir.encode(&mut key);
        if let Ok(memo) = self.memo.lock() {
            if let Some(hit) = memo.get(&key) {
                return hit.clone();
            }
        }
        let mut live = rebuild(dir);
        debug_assert_eq!(&MDir::from_live(&live.state(ADDR)), dir, "replay mismatch");
        let actions = match op {
            0 => live.read(ADDR, core as usize),
            1 => live.write(ADDR, core as usize),
            2 => {
                live.writeback(ADDR, core as usize);
                Vec::new()
            }
            _ => live.recall(ADDR),
        };
        let out_state = MDir::from_live(&live.state(ADDR));
        let out_acts = actions
            .into_iter()
            .map(|a| match a {
                CohAction::DataFromBank { to } => MAct::Data { to: to as u8 },
                CohAction::ForwardToOwner { owner, to } => MAct::Fwd {
                    owner: owner as u8,
                    to: to as u8,
                },
                CohAction::Invalidate { core } => MAct::Inval { core: core as u8 },
            })
            .collect::<Vec<_>>();
        if let Ok(mut memo) = self.memo.lock() {
            memo.insert(key, (out_state.clone(), out_acts.clone()));
        }
        (out_state, out_acts)
    }
}

impl DirEngine for LiveDir {
    fn read(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>) {
        self.step(dir, 0, core)
    }

    fn write(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>) {
        self.step(dir, 1, core)
    }

    fn writeback(&self, dir: &MDir, core: u8) -> MDir {
        self.step(dir, 2, core).0
    }

    fn recall(&self, dir: &MDir) -> (MDir, Vec<MAct>) {
        self.step(dir, 3, 0)
    }
}

/// An in-flight protocol message. `Ord` gives the canonical multiset
/// order the substrate keeps messages in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mmsg {
    /// Core → directory: read request.
    ReadReq {
        /// Requesting core.
        core: u8,
    },
    /// Core → directory: ownership (write) request.
    WriteReq {
        /// Requesting core.
        core: u8,
    },
    /// Bank/owner → core: the data grant.
    Data {
        /// Destination core.
        to: u8,
        /// Carried line value.
        val: u8,
        /// True for an exclusive (write) grant.
        excl: bool,
    },
    /// Directory → owner: forward the request (FwdRead / FwdWrite).
    Fwd {
        /// The core the directory believes owns the line.
        owner: u8,
        /// The requester awaiting data.
        to: u8,
        /// True for FwdWrite (owner surrenders the line).
        write: bool,
    },
    /// Directory → core: invalidate.
    Inval {
        /// Core losing its copy.
        core: u8,
    },
    /// Core → directory: clean invalidation ack (InvalAck).
    Ack {
        /// Acknowledging core.
        core: u8,
    },
    /// Core → directory: dirty invalidation ack — travels as a
    /// `Writeback` in the live system, data attached.
    AckData {
        /// Acknowledging (former owner) core.
        core: u8,
        /// The dirty value going home.
        val: u8,
    },
    /// Core → directory: dirty L1 eviction writeback.
    Wb {
        /// Evicting core.
        core: u8,
        /// The dirty value going home.
        val: u8,
    },
}

impl Mmsg {
    /// True if this message carries a dirty value travelling home.
    fn dirty_home(&self) -> Option<u8> {
        match self {
            Mmsg::AckData { val, .. } | Mmsg::Wb { val, .. } => Some(*val),
            _ => None,
        }
    }

    /// The data value carried, if any.
    fn value(&self) -> Option<u8> {
        match self {
            Mmsg::Data { val, .. } | Mmsg::AckData { val, .. } | Mmsg::Wb { val, .. } => Some(*val),
            _ => None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Mmsg::ReadReq { core } => out.extend_from_slice(&[0, core, 0, 0]),
            Mmsg::WriteReq { core } => out.extend_from_slice(&[1, core, 0, 0]),
            Mmsg::Data { to, val, excl } => out.extend_from_slice(&[2, to, val, excl as u8]),
            Mmsg::Fwd { owner, to, write } => out.extend_from_slice(&[3, owner, to, write as u8]),
            Mmsg::Inval { core } => out.extend_from_slice(&[4, core, 0, 0]),
            Mmsg::Ack { core } => out.extend_from_slice(&[5, core, 0, 0]),
            Mmsg::AckData { core, val } => out.extend_from_slice(&[6, core, val, 0]),
            Mmsg::Wb { core, val } => out.extend_from_slice(&[7, core, val, 0]),
        }
    }

    fn label(&self) -> String {
        match *self {
            Mmsg::ReadReq { core } => format!("deliver ReadReq(core={core}) -> dir"),
            Mmsg::WriteReq { core } => format!("deliver WriteReq(core={core}) -> dir"),
            Mmsg::Data { to, val, excl } => {
                let kind = if excl { "excl" } else { "shared" };
                format!("deliver Data(val={val}, {kind}) -> core{to}")
            }
            Mmsg::Fwd { owner, to, write } => {
                let kind = if write { "FwdWrite" } else { "FwdRead" };
                format!("deliver {kind}(for core{to}) -> core{owner}")
            }
            Mmsg::Inval { core } => format!("deliver Inval -> core{core}"),
            Mmsg::Ack { core } => format!("deliver InvalAck(core={core}) -> dir"),
            Mmsg::AckData { core, val } => {
                format!("deliver dirty InvalAck(core={core}, val={val}) -> dir")
            }
            Mmsg::Wb { core, val } => format!("deliver Writeback(core={core}, val={val}) -> dir"),
        }
    }
}

/// One L1 line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Line {
    /// Invalid.
    I,
    /// Clean copy with value.
    C(u8),
    /// Dirty copy with value.
    D(u8),
}

/// An outstanding miss (MSHR entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    /// True for a store miss.
    write: bool,
    /// The value the store will commit (0 for loads).
    val: u8,
    /// Set when an invalidation raced the miss: the fill completes the
    /// access but must not be cached (the live poisoning rule).
    poisoned: bool,
}

/// One core's model state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CoreSt {
    line: Line,
    pending: Option<Pending>,
    /// Next script op index.
    cursor: u8,
}

/// The full model state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MState {
    cores: Vec<CoreSt>,
    dir: MDir,
    /// The home bank's copy of the line.
    bank_val: u8,
    /// Set while the bank holds a value older than one it already held:
    /// the stale-writeback window (a late writeback from a deposed owner
    /// clobbering a newer one). Freshness is proven outside this window.
    bank_stale: bool,
    /// Every committed store value, in commit order. The last entry is
    /// the globally newest value; values are unique by construction.
    committed: Vec<u8>,
    /// In-flight messages, kept sorted (canonical multiset).
    msgs: Vec<Mmsg>,
    /// Remaining dirty-eviction / clean-drop / bank-recall env actions.
    wb_budget: u8,
    drop_budget: u8,
    recall_budget: u8,
}

impl MState {
    fn committed_val(&self) -> u8 {
        self.committed.last().copied().unwrap_or(0)
    }

    /// Commit-order epoch of a value: position in `committed`, or 0 for
    /// the initial value.
    fn epoch(&self, val: u8) -> usize {
        self.committed
            .iter()
            .position(|&v| v == val)
            .map(|p| p + 1)
            .unwrap_or(0)
    }

    fn push_msg(&mut self, m: Mmsg) {
        self.msgs.push(m);
        self.msgs.sort_unstable();
    }

    /// A dirty value (in an L1 or a homeward message) still outruns the
    /// bank, or the obligation to produce one is in transit: a core with
    /// a pending write always ends up either Dirty or (when poisoned)
    /// sending its store home, so freshness cannot be demanded until
    /// that write resolves. Cache-to-cache `FwdWrite` surrenders rely on
    /// this arm — the old owner's value rides a `Data` message to the
    /// next writer, dirty without being spelled `Wb`.
    fn dirty_outstanding(&self) -> bool {
        self.cores
            .iter()
            .any(|c| matches!(c.line, Line::D(_)) || c.pending.is_some_and(|p| p.write))
            || self.msgs.iter().any(|m| m.dirty_home().is_some())
    }

    /// Delivers a dirty value home: live `Op::Writeback` handling — the
    /// (stale-guarded) directory demotion happens at the caller; the bank
    /// insert is unconditional, which is what opens the stale window.
    fn bank_accept(&mut self, val: u8) {
        let incoming = self.epoch(val);
        let current = self.epoch(self.bank_val);
        self.bank_stale = incoming < current;
        self.bank_val = val;
    }
}

/// One scripted memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Load the line.
    Read,
    /// Store to the line.
    Write,
}

/// A protocol action (the resolution of one `enabled` label).
#[derive(Debug, Clone)]
enum Action {
    Issue { core: u8 },
    Deliver { idx: usize },
    EvictDirty { core: u8 },
    DropClean { core: u8 },
    Recall,
}

/// The protocol model: directory engine + per-core scripts + env-action
/// budgets. See the module docs for semantics.
pub struct ProtocolModel<E: DirEngine> {
    engine: E,
    scripts: Vec<Vec<ScriptOp>>,
    wb_budget: u8,
    drop_budget: u8,
    recall_budget: u8,
    /// Memoized codec-roundtrip verdicts per value.
    codec_memo: Mutex<HashMap<u8, Option<String>>>,
}

impl<E: DirEngine> ProtocolModel<E> {
    /// A model over `engine` with the given per-core scripts.
    pub fn new(engine: E, scripts: Vec<Vec<ScriptOp>>) -> Self {
        Self {
            engine,
            scripts,
            wb_budget: 1,
            drop_budget: 1,
            recall_budget: 1,
            codec_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The default checking configuration: three cores — two writers
    /// that then read back, one two-time reader — with one dirty
    /// eviction, one clean drop, and one bank recall available to the
    /// environment. This is the configuration `cargo xtask verify`
    /// explores exhaustively.
    pub fn default_config(engine: E) -> Self {
        Self::new(
            engine,
            vec![
                vec![ScriptOp::Write, ScriptOp::Read],
                vec![ScriptOp::Write, ScriptOp::Read],
                vec![ScriptOp::Read, ScriptOp::Read],
            ],
        )
    }

    fn cores(&self) -> u8 {
        self.scripts.len() as u8
    }

    /// The unique value core `core`'s script op `cursor` would store.
    fn store_value(core: u8, cursor: u8) -> u8 {
        16 * core + cursor + 1
    }

    /// The enabled actions of `s` with their labels, in canonical order:
    /// script issues by core, deliveries by message order, env actions.
    fn actions(&self, s: &MState) -> Vec<(Action, String)> {
        let mut out = Vec::new();
        for (i, core) in s.cores.iter().enumerate() {
            let c = i as u8;
            if core.pending.is_some() {
                continue;
            }
            if let Some(op) = self.scripts[i].get(core.cursor as usize) {
                let label = match op {
                    ScriptOp::Read => format!("core{c}: issue read"),
                    ScriptOp::Write => {
                        format!(
                            "core{c}: issue write(val={})",
                            Self::store_value(c, core.cursor)
                        )
                    }
                };
                out.push((Action::Issue { core: c }, label));
            }
        }
        for (idx, m) in s.msgs.iter().enumerate() {
            // A forward is deferred while its target's own store is
            // outstanding (see module docs).
            if let Mmsg::Fwd { owner, .. } = m {
                let target = &s.cores[*owner as usize];
                if target.pending.is_some_and(|p| p.write) {
                    continue;
                }
            }
            out.push((Action::Deliver { idx }, m.label()));
        }
        for (i, core) in s.cores.iter().enumerate() {
            let c = i as u8;
            match core.line {
                Line::D(_) if s.wb_budget > 0 => {
                    out.push((
                        Action::EvictDirty { core: c },
                        format!("core{c}: evict dirty"),
                    ));
                }
                Line::C(_) if s.drop_budget > 0 => {
                    out.push((
                        Action::DropClean { core: c },
                        format!("core{c}: drop clean"),
                    ));
                }
                _ => {}
            }
        }
        if s.recall_budget > 0 && s.dir != MDir::Uncached {
            out.push((Action::Recall, "bank: recall line".to_string()));
        }
        out
    }

    /// Emits the messages for a batch of directory actions produced by a
    /// request from `requester` (`write` = ownership request).
    fn emit(&self, s: &mut MState, acts: &[MAct], write: bool) {
        for a in acts {
            match *a {
                MAct::Data { to } => s.push_msg(Mmsg::Data {
                    to,
                    val: s.bank_val,
                    excl: write,
                }),
                MAct::Fwd { owner, to } => s.push_msg(Mmsg::Fwd { owner, to, write }),
                MAct::Inval { core } => s.push_msg(Mmsg::Inval { core }),
            }
        }
    }

    fn do_issue(&self, s: &mut MState, c: u8) {
        let cursor = s.cores[c as usize].cursor;
        let op = self.scripts[c as usize][cursor as usize];
        s.cores[c as usize].cursor += 1;
        match (op, s.cores[c as usize].line) {
            (ScriptOp::Read, Line::C(_) | Line::D(_)) => {
                // Load hit: no traffic.
            }
            (ScriptOp::Read, Line::I) => {
                s.cores[c as usize].pending = Some(Pending {
                    write: false,
                    val: 0,
                    poisoned: false,
                });
                s.push_msg(Mmsg::ReadReq { core: c });
            }
            (ScriptOp::Write, Line::D(_)) => {
                // Store hit on an exclusive dirty line: commits locally,
                // no traffic (the owner already holds write permission).
                let val = Self::store_value(c, cursor);
                s.committed.push(val);
                s.cores[c as usize].line = Line::D(val);
            }
            (ScriptOp::Write, Line::C(_) | Line::I) => {
                // Store miss or upgrade: request ownership. (The shipped
                // L1 writes clean hits in place; the model upgrades so
                // sharers are invalidated through the protocol.)
                s.cores[c as usize].pending = Some(Pending {
                    write: true,
                    val: Self::store_value(c, cursor),
                    poisoned: false,
                });
                s.push_msg(Mmsg::WriteReq { core: c });
            }
        }
    }

    fn do_deliver(&self, s: &mut MState, idx: usize) {
        let m = s.msgs.remove(idx);
        match m {
            Mmsg::ReadReq { core } => {
                let (dir, acts) = self.engine.read(&s.dir, core);
                s.dir = dir;
                self.emit(s, &acts, false);
            }
            Mmsg::WriteReq { core } => {
                let (dir, acts) = self.engine.write(&s.dir, core);
                s.dir = dir;
                self.emit(s, &acts, true);
            }
            Mmsg::Data { to, val, excl } => {
                let Some(p) = s.cores[to as usize].pending.take() else {
                    // No outstanding miss for this grant: an engine bug;
                    // cache it anyway so value-domain checks can see it.
                    s.cores[to as usize].line = Line::C(val);
                    return;
                };
                if p.write {
                    debug_assert!(excl, "store miss granted a shared copy");
                    s.committed.push(p.val);
                    if p.poisoned {
                        // Invalidated while the miss was in flight: the
                        // store still completes (the core consumes the
                        // fill once) but the line is not cached — the
                        // dirty data goes straight home.
                        s.cores[to as usize].line = Line::I;
                        s.push_msg(Mmsg::Wb {
                            core: to,
                            val: p.val,
                        });
                    } else {
                        s.cores[to as usize].line = Line::D(p.val);
                    }
                } else if p.poisoned {
                    s.cores[to as usize].line = Line::I;
                } else {
                    s.cores[to as usize].line = Line::C(val);
                }
            }
            Mmsg::Fwd { owner, to, write } => {
                // A write-forward revokes the old owner's copy — also a
                // copy still in flight to it: poison its pending read so
                // the fill is consumed but not cached (deliveries are
                // deferred only while the target's own *store* is
                // outstanding). Mirrors the live FwdWrite handler.
                if write {
                    if let Some(p) = s.cores[owner as usize].pending.as_mut() {
                        p.poisoned = true;
                    }
                }
                let val = match s.cores[owner as usize].line {
                    Line::D(v) => {
                        if write {
                            s.cores[owner as usize].line = Line::I;
                        }
                        v
                    }
                    // The owner's copy raced away (writeback/inval in
                    // flight): serve the newest committed value, as the
                    // live system's fallback does.
                    Line::C(v) => {
                        if write {
                            s.cores[owner as usize].line = Line::I;
                        }
                        v
                    }
                    Line::I => s.committed_val(),
                };
                s.push_msg(Mmsg::Data {
                    to,
                    val,
                    excl: write,
                });
            }
            Mmsg::Inval { core } => {
                let c = &mut s.cores[core as usize];
                if let Some(p) = c.pending.as_mut() {
                    p.poisoned = true;
                }
                match c.line {
                    Line::D(v) => {
                        c.line = Line::I;
                        s.push_msg(Mmsg::AckData { core, val: v });
                    }
                    Line::C(_) | Line::I => {
                        c.line = Line::I;
                        s.push_msg(Mmsg::Ack { core });
                    }
                }
            }
            Mmsg::Ack { .. } => {
                // The protocol is ack-free: the directory transitioned
                // when it sent the invalidation; the clean ack is sunk.
            }
            Mmsg::AckData { core, val } | Mmsg::Wb { core, val } => {
                s.dir = self.engine.writeback(&s.dir, core);
                s.bank_accept(val);
            }
        }
    }

    fn do_env(&self, s: &mut MState, action: &Action) {
        match action {
            Action::EvictDirty { core } => {
                let Line::D(v) = s.cores[*core as usize].line else {
                    return;
                };
                s.cores[*core as usize].line = Line::I;
                s.wb_budget -= 1;
                s.push_msg(Mmsg::Wb {
                    core: *core,
                    val: v,
                });
            }
            Action::DropClean { core } => {
                // The live system drops clean lines silently (it never
                // calls drop_sharer), so neither does the model.
                s.cores[*core as usize].line = Line::I;
                s.drop_budget -= 1;
            }
            Action::Recall => {
                let (dir, acts) = self.engine.recall(&s.dir);
                s.dir = dir;
                s.recall_budget -= 1;
                self.emit(s, &acts, false);
            }
            _ => {}
        }
    }

    /// The codec-roundtrip invariant: every value the protocol moves
    /// must survive compress/decompress through the live codecs (the
    /// model's abstraction of DISCO's in-network compression of Response
    /// packets). Memoized per value.
    fn codec_roundtrip(&self, val: u8) -> Option<String> {
        if let Ok(memo) = self.codec_memo.lock() {
            if let Some(hit) = memo.get(&val) {
                return hit.clone();
            }
        }
        let line = line_pattern(val);
        let mut verdict = None;
        for codec in [Codec::delta(), Codec::fpc(), Codec::bdi()] {
            let enc = codec.compress(&line);
            match codec.decompress(&enc) {
                Ok(back) if back == line => {}
                Ok(_) => {
                    verdict = Some(format!("codec roundtrip corrupted value {val}"));
                    break;
                }
                Err(e) => {
                    verdict = Some(format!("codec failed to decompress value {val}: {e:?}"));
                    break;
                }
            }
        }
        if let Ok(mut memo) = self.codec_memo.lock() {
            memo.insert(val, verdict.clone());
        }
        verdict
    }
}

/// A deterministic 64 B line whose words are derived from the model
/// value — exercises the delta/FPC/BDI encoders on non-trivial content.
fn line_pattern(val: u8) -> CacheLine {
    let v = val as u64;
    let mut words = [0u64; 8];
    for (i, w) in words.iter_mut().enumerate() {
        *w = v.wrapping_mul(0x0101).wrapping_add((i as u64) * 4);
    }
    CacheLine::from_u64_words(words)
}

impl<E: DirEngine> TransitionSystem for ProtocolModel<E> {
    type State = MState;

    fn initial(&self) -> Vec<MState> {
        vec![MState {
            cores: (0..self.cores())
                .map(|_| CoreSt {
                    line: Line::I,
                    pending: None,
                    cursor: 0,
                })
                .collect(),
            dir: MDir::Uncached,
            bank_val: 0,
            bank_stale: false,
            committed: Vec::new(),
            msgs: Vec::new(),
            wb_budget: self.wb_budget,
            drop_budget: self.drop_budget,
            recall_budget: self.recall_budget,
        }]
    }

    fn enabled(&self, s: &MState) -> Vec<String> {
        self.actions(s).into_iter().map(|(_, l)| l).collect()
    }

    fn apply(&self, s: &MState, i: usize) -> MState {
        let mut next = s.clone();
        let (action, _) = self.actions(s).swap_remove(i);
        match action {
            Action::Issue { core } => self.do_issue(&mut next, core),
            Action::Deliver { idx } => self.do_deliver(&mut next, idx),
            env => self.do_env(&mut next, &env),
        }
        next
    }

    fn check(&self, s: &MState) -> Vec<String> {
        let mut violations = Vec::new();
        // I1a: single writer — at most one *live* dirty copy. A dirty
        // core targeted by an in-flight invalidation is a zombie owner:
        // a bank recall already revoked it (the protocol is ack-free, so
        // the old owner learns late) and the directory may re-grant the
        // line before the revocation lands. Its copy is a pending
        // writeback, not a writer.
        let dirty: Vec<u8> = s
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.line, Line::D(_)))
            .map(|(i, _)| i as u8)
            .collect();
        let live_dirty: Vec<u8> = dirty
            .iter()
            .copied()
            .filter(|&d| {
                !s.msgs
                    .iter()
                    .any(|m| matches!(m, Mmsg::Inval { core } if *core == d))
            })
            .collect();
        if live_dirty.len() > 1 {
            violations.push(format!(
                "single-writer violated: cores {live_dirty:?} hold live dirty copies \
                 simultaneously (no invalidation in flight for either)"
            ));
        }
        // I1b: a dirty copy is known to the directory as the owner, or a
        // forward/invalidation that will resolve it is still in flight.
        for &d in &dirty {
            let resolving = s.msgs.iter().any(|m| {
                matches!(m, Mmsg::Fwd { owner, .. } if *owner == d)
                    || matches!(m, Mmsg::Inval { core } if *core == d)
            });
            if s.dir.owner() != Some(d) && !resolving {
                violations.push(format!(
                    "dirty copy at core{d} unknown to the directory (owner: {:?}) \
                     with nothing in flight to resolve it",
                    s.dir.owner()
                ));
            }
        }
        // I5: copy accounting — every cached copy is directory-accounted
        // or an invalidation/forward for it is in flight.
        for (i, core) in s.cores.iter().enumerate() {
            let c = i as u8;
            if matches!(core.line, Line::I) {
                continue;
            }
            let covered = s.dir.accounts(c)
                || s.msgs.iter().any(|m| {
                    matches!(m, Mmsg::Inval { core } if *core == c)
                        || matches!(m, Mmsg::Fwd { owner, .. } if *owner == c)
                });
            if !covered {
                violations.push(format!(
                    "core{c} holds a copy the directory does not account for"
                ));
            }
        }
        // Value-domain soundness: every value in a cache, the bank, or a
        // message was actually committed by some store (or is initial).
        let in_domain = |v: u8| v == 0 || s.committed.contains(&v);
        for (i, core) in s.cores.iter().enumerate() {
            if let Line::C(v) | Line::D(v) = core.line {
                if !in_domain(v) {
                    violations.push(format!("core{i} caches fabricated value {v}"));
                }
            }
        }
        if !in_domain(s.bank_val) {
            violations.push(format!("bank holds fabricated value {}", s.bank_val));
        }
        for m in &s.msgs {
            if let Some(v) = m.value() {
                if !in_domain(v) {
                    violations.push(format!("in-flight message carries fabricated value {v}"));
                }
            }
        }
        // Freshness: once no dirty value is outstanding, the bank holds
        // the newest committed value — except inside the explicitly
        // tracked stale-writeback window.
        if !s.dirty_outstanding() && !s.bank_stale && s.bank_val != s.committed_val() {
            violations.push(format!(
                "bank is stale: holds {} but newest committed value is {} \
                 with no dirty data outstanding",
                s.bank_val,
                s.committed_val()
            ));
        }
        // Codec transparency for every live value.
        let mut vals: Vec<u8> = s
            .cores
            .iter()
            .filter_map(|c| match c.line {
                Line::C(v) | Line::D(v) => Some(v),
                Line::I => None,
            })
            .chain(s.msgs.iter().filter_map(Mmsg::value))
            .chain([s.bank_val])
            .collect();
        vals.sort_unstable();
        vals.dedup();
        for v in vals {
            if let Some(msg) = self.codec_roundtrip(v) {
                violations.push(msg);
            }
        }
        violations
    }

    fn quiescent(&self, s: &MState) -> bool {
        s.msgs.is_empty() && s.cores.iter().all(|c| c.pending.is_none())
    }

    fn encode(&self, s: &MState) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for core in &s.cores {
            match core.line {
                Line::I => out.extend_from_slice(&[0, 0]),
                Line::C(v) => out.extend_from_slice(&[1, v]),
                Line::D(v) => out.extend_from_slice(&[2, v]),
            }
            match core.pending {
                None => out.extend_from_slice(&[0, 0, 0]),
                Some(p) => out.extend_from_slice(&[1 + p.write as u8, p.val, p.poisoned as u8]),
            }
            out.push(core.cursor);
        }
        s.dir.encode(&mut out);
        out.push(s.bank_val);
        out.push(s.bank_stale as u8);
        out.push(s.committed.len() as u8);
        out.extend_from_slice(&s.committed);
        out.push(s.msgs.len() as u8);
        for m in &s.msgs {
            m.encode(&mut out);
        }
        out.extend_from_slice(&[s.wb_budget, s.drop_budget, s.recall_budget]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore, ExploreOptions};

    #[test]
    fn live_dir_roundtrips_states() {
        let e = LiveDir::default();
        let (d, acts) = e.read(&MDir::Uncached, 1);
        assert_eq!(d, MDir::Shared(vec![1]));
        assert_eq!(acts, vec![MAct::Data { to: 1 }]);
        let (d, acts) = e.write(&d, 2);
        assert_eq!(
            d,
            MDir::Owned {
                owner: 2,
                sharers: vec![]
            }
        );
        assert_eq!(acts, vec![MAct::Inval { core: 1 }, MAct::Data { to: 2 }]);
        let (d, acts) = e.read(&d, 0);
        assert_eq!(
            d,
            MDir::Owned {
                owner: 2,
                sharers: vec![0]
            }
        );
        assert_eq!(acts, vec![MAct::Fwd { owner: 2, to: 0 }]);
        let d = e.writeback(&d, 2);
        assert_eq!(d, MDir::Shared(vec![0]));
    }

    #[test]
    fn small_model_is_clean_and_quiescable() {
        // Two cores, one writer: every interleaving settles coherently.
        let model = ProtocolModel::new(
            LiveDir::default(),
            vec![vec![ScriptOp::Write], vec![ScriptOp::Read]],
        );
        let report = explore(&model, &ExploreOptions::default());
        assert!(report.clean(), "{:?}", report.violations);
        assert!(!report.truncated);
        assert!(report.states > 50, "space too small: {}", report.states);
    }

    #[test]
    fn default_config_reaches_multiple_sharers() {
        // The default configuration must exercise ≥ 2 simultaneous
        // sharers (the acceptance bound): after both writers finish,
        // their read-backs plus the reader can overlap as sharers.
        let model = ProtocolModel::default_config(LiveDir::default());
        let s0 = &model.initial()[0];
        // Drive a concrete schedule: writer 0 completes, then all three
        // cores read.
        let mut s = s0.clone();
        let step = |model: &ProtocolModel<LiveDir>, s: &MState, label: &str| -> MState {
            let labels = model.enabled(s);
            let i = labels
                .iter()
                .position(|l| l.starts_with(label))
                .unwrap_or_else(|| panic!("no action starting with {label}: {labels:?}"));
            model.apply(s, i)
        };
        s = step(&model, &s, "core0: issue write");
        s = step(&model, &s, "deliver WriteReq(core=0)");
        s = step(&model, &s, "deliver Data(val=0, excl) -> core0");
        s = step(&model, &s, "core0: evict dirty");
        s = step(&model, &s, "deliver Writeback(core=0");
        s = step(&model, &s, "core0: issue read");
        s = step(&model, &s, "core2: issue read");
        s = step(&model, &s, "deliver ReadReq(core=0)");
        s = step(&model, &s, "deliver ReadReq(core=2)");
        assert_eq!(s.dir, MDir::Shared(vec![0, 2]), "two sharers reached");
    }

    /// A defective engine that "forgets" to invalidate sharers on a
    /// write — the illegal-MOESI-edge mutation the checker must catch.
    struct NoInvalOnWrite(LiveDir);

    impl DirEngine for NoInvalOnWrite {
        fn read(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>) {
            self.0.read(dir, core)
        }

        fn write(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>) {
            let (d, acts) = self.0.write(dir, core);
            (
                d,
                acts.into_iter()
                    .filter(|a| !matches!(a, MAct::Inval { .. }))
                    .collect(),
            )
        }

        fn writeback(&self, dir: &MDir, core: u8) -> MDir {
            self.0.writeback(dir, core)
        }

        fn recall(&self, dir: &MDir) -> (MDir, Vec<MAct>) {
            self.0.recall(dir)
        }
    }

    #[test]
    fn missing_invalidation_is_caught_with_schedule() {
        let model = ProtocolModel::default_config(NoInvalOnWrite(LiveDir::default()));
        let report = explore(&model, &ExploreOptions::default());
        assert!(
            !report.clean(),
            "a write that skips invalidations must break an invariant"
        );
        let v = &report.violations[0];
        assert!(!v.schedule.is_empty(), "counterexample is replayable");
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use crate::explorer::{explore, ExploreOptions};

    #[test]
    #[ignore = "state-count probe; run with --release -- --ignored --nocapture"]
    fn probe_default_state_count() {
        let model = ProtocolModel::default_config(LiveDir::default());
        let opts = ExploreOptions {
            workers: 4,
            ..ExploreOptions::default()
        };
        let report = explore(&model, &opts);
        println!(
            "default_config: {} states, {} transitions, depth {}, truncated={}, violations={}",
            report.states,
            report.transitions,
            report.max_depth_reached,
            report.truncated,
            report.violations.len()
        );
        println!("{}", report.render("model"));
    }
}
