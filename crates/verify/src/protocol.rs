//! Protocol-exhaustiveness analysis: the MOESI directory transition table
//! and the [`Msg`] tag encoding.
//!
//! The directory in `disco-cache::coherence` is a protocol *engine*; its
//! transition function lives in Rust `match` arms rather than a table, so
//! nothing forces it to be total over the abstract state space. This
//! module recovers the table by driving a real [`Directory`] through one
//! representative concrete state per [`StateKind`] and one call per
//! [`DirEvent`], then checks the result for unhandled (state × event)
//! pairs and abstract states unreachable from `Uncached`. Tests inject
//! deliberately incomplete tables to prove the checker rejects them.

use disco_cache::addr::LineAddr;
use disco_cache::coherence::{Directory, StateKind};
use disco_core::protocol::{Msg, Op};
use disco_noc::topology::Topology;
use disco_noc::{NocConfig, PacketClass};

use crate::cdg::{analyze, class_vc_groups, CdgOptions};

/// The events the system layer can fire at a directory, mirroring the
/// public [`Directory`] API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirEvent {
    /// A core reads the line.
    Read,
    /// A core requests ownership to write.
    Write,
    /// The owner writes the dirty line back.
    Writeback,
    /// A sharer silently drops its clean copy.
    DropSharer,
    /// The bank evicts the line and recalls every copy.
    Recall,
}

impl DirEvent {
    /// Every directory event.
    pub const ALL: [DirEvent; 5] = [
        DirEvent::Read,
        DirEvent::Write,
        DirEvent::Writeback,
        DirEvent::DropSharer,
        DirEvent::Recall,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DirEvent::Read => "Read",
            DirEvent::Write => "Write",
            DirEvent::Writeback => "Writeback",
            DirEvent::DropSharer => "DropSharer",
            DirEvent::Recall => "Recall",
        }
    }
}

/// One abstract transition: in state `from`, event `event` leads to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Abstract state before the event.
    pub from: StateKind,
    /// The event applied.
    pub event: DirEvent,
    /// Abstract state after the event.
    pub to: StateKind,
}

/// An abstract MOESI transition table.
#[derive(Debug, Clone, Default)]
pub struct TransitionTable {
    /// The transitions, at most one per (state, event) pair.
    pub transitions: Vec<Transition>,
}

impl TransitionTable {
    /// The successor state for `(from, event)`, if the table handles it.
    pub fn lookup(&self, from: StateKind, event: DirEvent) -> Option<StateKind> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.event == event)
            .map(|t| t.to)
    }
}

/// Extracts the abstract transition table from the real [`Directory`] by
/// constructing one representative concrete state per [`StateKind`] and
/// applying every [`DirEvent`] to it.
pub fn extract_directory_table() -> TransitionTable {
    let addr = LineAddr(0x40);
    let mut transitions = Vec::new();
    for from in StateKind::ALL {
        for event in DirEvent::ALL {
            let mut dir = directory_in(from, addr);
            apply(&mut dir, addr, event);
            transitions.push(Transition {
                from,
                event,
                to: dir.state(addr).kind(),
            });
        }
    }
    TransitionTable { transitions }
}

/// A directory holding `addr` in a representative concrete state of
/// `kind`: core 0 is the owner where one exists, core 1 a sharer.
fn directory_in(kind: StateKind, addr: LineAddr) -> Directory {
    let mut dir = Directory::new();
    match kind {
        StateKind::Uncached => {}
        StateKind::Shared => {
            let _ = dir.read(addr, 0);
            let _ = dir.read(addr, 1);
        }
        StateKind::Owned => {
            let _ = dir.write(addr, 0);
            let _ = dir.read(addr, 1);
        }
    }
    debug_assert_eq!(dir.state(addr).kind(), kind);
    dir
}

/// Applies one event to the representative state: reads and writes come
/// from a third core (2), writebacks from the owner (0), and drops from
/// the sharer (1).
fn apply(dir: &mut Directory, addr: LineAddr, event: DirEvent) {
    match event {
        DirEvent::Read => {
            let _ = dir.read(addr, 2);
        }
        DirEvent::Write => {
            let _ = dir.write(addr, 2);
        }
        DirEvent::Writeback => dir.writeback(addr, 0),
        DirEvent::DropSharer => dir.drop_sharer(addr, 1),
        DirEvent::Recall => {
            let _ = dir.recall(addr);
        }
    }
}

/// Findings of one protocol analysis.
#[derive(Debug, Clone, Default)]
pub struct ProtocolReport {
    /// (state, event) pairs the table does not handle.
    pub missing: Vec<(StateKind, DirEvent)>,
    /// Abstract states no event sequence from `Uncached` can reach.
    pub unreachable: Vec<StateKind>,
}

impl ProtocolReport {
    /// True when the table is total and every state is reachable.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty() && self.unreachable.is_empty()
    }
}

/// Checks a transition table for totality over (state × event) and for
/// reachability of every abstract state from `Uncached`.
pub fn check_table(table: &TransitionTable) -> ProtocolReport {
    let mut report = ProtocolReport::default();
    for from in StateKind::ALL {
        for event in DirEvent::ALL {
            if table.lookup(from, event).is_none() {
                report.missing.push((from, event));
            }
        }
    }
    let mut reached = vec![StateKind::Uncached];
    let mut frontier = vec![StateKind::Uncached];
    while let Some(state) = frontier.pop() {
        for event in DirEvent::ALL {
            if let Some(next) = table.lookup(state, event) {
                if !reached.contains(&next) {
                    reached.push(next);
                    frontier.push(next);
                }
            }
        }
    }
    for state in StateKind::ALL {
        if !reached.contains(&state) {
            report.unreachable.push(state);
        }
    }
    report
}

/// Checks the [`Msg`] tag encoding: every [`Op`] must survive an
/// encode/decode roundtrip, and tag codes beyond the enum must be
/// rejected by [`Msg::try_decode`]. Returns one message per violation.
pub fn check_ops() -> Vec<String> {
    let mut errors = Vec::new();
    for op in Op::ALL {
        let msg = Msg::new(op, 5, 0x1234);
        match Msg::try_decode(msg.encode()) {
            Some(decoded) if decoded == msg => {}
            other => errors.push(format!(
                "{op:?} fails the encode/decode roundtrip: {other:?}"
            )),
        }
    }
    for code in Op::ALL.len() as u64..16 {
        if Msg::try_decode(code).is_some() {
            errors.push(format!("tag code {code} decodes but names no Op"));
        }
    }
    errors
}

// ---------------------------------------------------------------------------
// Message-class composition: op → class stability, VC group layout, and
// the message-dependency argument composed with the CDG results.
// ---------------------------------------------------------------------------

/// The pinned op → virtual-network class table. [`check_message_classes`]
/// compares the live [`Op::class`] against this, so a silent remap of a
/// protocol message onto a different virtual network fails `cargo xtask
/// verify` instead of shipping.
pub fn expected_class(op: Op) -> PacketClass {
    match op {
        Op::ReadReq | Op::WriteReq | Op::MemRead => PacketClass::Request,
        Op::DataToCore | Op::Writeback | Op::MemFill | Op::MemWriteback => PacketClass::Response,
        Op::Invalidate | Op::InvalAck | Op::FwdRead | Op::FwdWrite => PacketClass::Coherence,
    }
}

/// The messages an endpoint may emit as a direct consequence of
/// consuming `op` — the message-dependency edges of the protocol,
/// extracted by inspection of the `handle_message`/`BankRequest`/
/// `BankStore` handlers in `crates/core/src/system.rs`. The `match` is
/// total over [`Op`], so adding a message forces this table (and the
/// deadlock argument below) to be revisited.
pub fn op_triggers(op: Op) -> &'static [Op] {
    match op {
        // Bank request path: hit → data, dirty owner → forward, miss →
        // DRAM; a write additionally invalidates sharers.
        Op::ReadReq => &[Op::DataToCore, Op::FwdRead, Op::MemRead],
        Op::WriteReq => &[Op::DataToCore, Op::FwdWrite, Op::Invalidate, Op::MemRead],
        // A fill that was poisoned by an in-flight invalidation hands
        // its dirty data straight back to the home bank.
        Op::DataToCore => &[Op::Writeback],
        // Storing into the inclusive LLC can evict another line: its
        // cached copies are recalled and a dirty victim goes to DRAM.
        Op::Writeback => &[Op::Invalidate, Op::MemWriteback],
        // A dirty copy acks with the data (as a writeback); clean acks
        // are empty.
        Op::Invalidate => &[Op::Writeback, Op::InvalAck],
        Op::InvalAck => &[],
        // The owner supplies the line cache-to-cache.
        Op::FwdRead => &[Op::DataToCore],
        Op::FwdWrite => &[Op::DataToCore],
        Op::MemRead => &[Op::MemFill],
        // The fill wakes the bank's waiters and can itself evict.
        Op::MemFill => &[Op::DataToCore, Op::Invalidate, Op::MemWriteback],
        Op::MemWriteback => &[],
    }
}

/// The op-level dependency cycles the argument below accepts, as sorted
/// op-name lists. Exactly one exists today: an LLC store evicting a line
/// recalls its copies (`Invalidate`), and a recalled dirty copy answers
/// with a `Writeback`, whose store can evict again. The chain is benign
/// because every edge is *endpoint-consumed*: a delivered packet is
/// drained unconditionally into the event queue (consumption never waits
/// on the ability to inject), so the cycle never manifests as an
/// in-network circular wait — and it terminates because each lap evicts
/// a strictly older LLC resident. A new undocumented cycle fails
/// [`check_message_classes`] until it is argued here.
const DOCUMENTED_CYCLES: &[&[&str]] = &[&["Invalidate", "Writeback"]];

/// Checks the op → class mapping, the VC group layout, and the
/// message-dependency structure, composed with the CDG deadlock results.
/// Returns one message per violation; empty means the composition
/// argument holds:
///
/// 1. [`Op::class`] matches the pinned [`expected_class`] table.
/// 2. Data carriers (`wants_raw_at_destination`) and latency-critical
///    ops ride the Response network, so compression and priority rules
///    see every packet they govern.
/// 3. For the configured VC count (and the standard 2/4/8 sweeps), the
///    per-class [`PacketClass::vc_range`] groups are exactly the CDG's
///    [`class_vc_groups`] partition: Request and Coherence share the
///    lower group, Response owns the upper, nothing overlaps, and the
///    union covers every VC.
/// 4. The op-level message-dependency graph ([`op_triggers`]) contains
///    no cycle beyond [`DOCUMENTED_CYCLES`].
/// 5. The CDG analysis itself reports the topology deadlock-free under
///    the config's routing and VC count — together with (3) and (4) this
///    is the full argument: each packet stays inside its class's VC
///    group for its whole route (in-network dependencies cannot cross
///    groups), the CDG proves each group's routing relation acyclic
///    (with the dateline narrowing on wrapped topologies), and every
///    cross-message dependency passes through an endpoint that consumes
///    unconditionally.
pub fn check_message_classes(config: &NocConfig, topo: &Topology) -> Vec<String> {
    let mut errors = Vec::new();

    // 1. Pinned class table.
    for op in Op::ALL {
        if op.class() != expected_class(op) {
            errors.push(format!(
                "{op:?} rides {:?} but the pinned table says {:?}; update expected_class() \
                 and re-derive the deadlock argument if the remap is intended",
                op.class(),
                expected_class(op)
            ));
        }
    }

    // 2. Data carriers and critical ops are Response-class.
    for op in Op::ALL {
        if op.wants_raw_at_destination() && op.class() != PacketClass::Response {
            errors.push(format!(
                "{op:?} carries data but rides {:?}; compression only sees the Response network",
                op.class()
            ));
        }
        if op.is_critical() && op.class() != PacketClass::Response {
            errors.push(format!(
                "{op:?} is latency-critical but rides {:?}; priority rules only govern \
                 the Response network",
                op.class()
            ));
        }
    }

    // 3. VC group layout, for the configured count and the sweep values.
    let mut vc_counts = vec![config.vcs, 2, 4, 8];
    vc_counts.sort_unstable();
    vc_counts.dedup();
    for vcs in vc_counts {
        errors.extend(check_vc_groups(vcs));
    }

    // 4. Only documented op-level dependency cycles.
    for cycle in undocumented_cycles(op_triggers) {
        errors.push(format!(
            "undocumented message-dependency cycle {cycle:?}; either remove the edge or \
             extend DOCUMENTED_CYCLES with an endpoint-consumption argument"
        ));
    }

    // 5. The in-network half of the argument.
    let report = analyze(topo, &CdgOptions::from_config(config));
    if !report.is_deadlock_free() {
        let trace = report.cycle_trace().unwrap_or_default();
        errors.push(format!(
            "CDG reports a routing cycle on {}; the class composition argument needs \
             deadlock-free per-group routing: {trace}",
            topo.name()
        ));
    }

    errors
}

/// Checks that the per-class `vc_range`s form the `class_vc_groups`
/// partition at one VC count.
fn check_vc_groups(vcs: usize) -> Vec<String> {
    let mut errors = Vec::new();
    let groups = class_vc_groups(vcs);
    let req = PacketClass::Request.vc_range(vcs);
    let coh = PacketClass::Coherence.vc_range(vcs);
    let resp = PacketClass::Response.vc_range(vcs);
    if req != coh {
        errors.push(format!(
            "vcs={vcs}: Request ({req:?}) and Coherence ({coh:?}) must share one VC group"
        ));
    }
    for (class, range) in [("Request", &req), ("Response", &resp)] {
        if range.is_empty() {
            errors.push(format!("vcs={vcs}: {class} VC range {range:?} is empty"));
        }
        if !groups.iter().any(|g| g == range) {
            errors.push(format!(
                "vcs={vcs}: {class} range {range:?} is not one of the CDG groups {groups:?}"
            ));
        }
    }
    if vcs > 1 && req.end != resp.start {
        errors.push(format!(
            "vcs={vcs}: Request/Coherence group {req:?} and Response group {resp:?} \
             must tile 0..{vcs} without overlap"
        ));
    }
    if resp.end != vcs || req.start != 0 {
        errors.push(format!(
            "vcs={vcs}: groups {req:?} + {resp:?} do not cover 0..{vcs}"
        ));
    }
    errors
}

/// Non-trivial strongly connected components (and self-loops) of the
/// trigger graph that are not in [`DOCUMENTED_CYCLES`], as sorted op-name
/// lists. Exposed with an injectable trigger function so the mutation
/// suite can prove a new cycle is caught.
pub fn undocumented_cycles(triggers: fn(Op) -> &'static [Op]) -> Vec<Vec<String>> {
    let n = Op::ALL.len();
    // Floyd–Warshall reachability over the 11-op graph.
    let mut reach = vec![[false; 16]; n];
    for (i, &op) in Op::ALL.iter().enumerate() {
        for &succ in triggers(op) {
            let j = Op::ALL.iter().position(|&o| o == succ).expect("op in ALL");
            reach[i][j] = true;
        }
    }
    for k in 0..n {
        let via = reach[k];
        for row in reach.iter_mut() {
            if row[k] {
                for (cell, &reachable) in row.iter_mut().zip(via.iter()) {
                    *cell |= reachable;
                }
            }
        }
    }
    // An op is on a cycle iff it reaches itself; ops that reach each
    // other form one SCC.
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut claimed = [false; 16];
    for i in 0..n {
        if !reach[i][i] || claimed[i] {
            continue;
        }
        let mut scc = Vec::new();
        for j in 0..n {
            if reach[i][j] && reach[j][i] {
                claimed[j] = true;
                scc.push(format!("{:?}", Op::ALL[j]));
            }
        }
        scc.sort();
        cycles.push(scc);
    }
    cycles.retain(|scc| {
        !DOCUMENTED_CYCLES
            .iter()
            .any(|doc| doc.len() == scc.len() && doc.iter().zip(scc).all(|(a, b)| a == b))
    });
    cycles.sort();
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracted_table_is_total_and_reachable() {
        let table = extract_directory_table();
        assert_eq!(
            table.transitions.len(),
            StateKind::ALL.len() * DirEvent::ALL.len()
        );
        let report = check_table(&table);
        assert!(
            report.is_complete(),
            "missing {:?}, unreachable {:?}",
            report.missing,
            report.unreachable
        );
    }

    #[test]
    fn extracted_transitions_match_moesi() {
        let table = extract_directory_table();
        assert_eq!(
            table.lookup(StateKind::Uncached, DirEvent::Read),
            Some(StateKind::Shared)
        );
        assert_eq!(
            table.lookup(StateKind::Uncached, DirEvent::Write),
            Some(StateKind::Owned)
        );
        assert_eq!(
            table.lookup(StateKind::Shared, DirEvent::Write),
            Some(StateKind::Owned)
        );
        assert_eq!(
            table.lookup(StateKind::Owned, DirEvent::Writeback),
            Some(StateKind::Shared)
        );
        assert_eq!(
            table.lookup(StateKind::Owned, DirEvent::Recall),
            Some(StateKind::Uncached)
        );
    }

    #[test]
    fn incomplete_table_is_rejected() {
        let mut table = extract_directory_table();
        table
            .transitions
            .retain(|t| !(t.from == StateKind::Shared && t.event == DirEvent::Write));
        let report = check_table(&table);
        assert_eq!(report.missing, vec![(StateKind::Shared, DirEvent::Write)]);
        assert!(!report.is_complete());
    }

    #[test]
    fn unreachable_state_is_rejected() {
        // Redirect every transition into Owned elsewhere: Owned becomes
        // unreachable from Uncached even though the table stays total.
        let mut table = extract_directory_table();
        for t in &mut table.transitions {
            if t.to == StateKind::Owned {
                t.to = StateKind::Shared;
            }
        }
        let report = check_table(&table);
        assert!(report.missing.is_empty());
        assert_eq!(report.unreachable, vec![StateKind::Owned]);
    }

    #[test]
    fn op_encoding_is_exhaustive() {
        assert_eq!(check_ops(), Vec::<String>::new());
    }

    #[test]
    fn message_class_composition_holds_on_every_topology() {
        use disco_noc::topology::TopologyChoice;
        for choice in TopologyChoice::ALL {
            let topo = choice.build(4, 4);
            let config = NocConfig {
                vcs: topo.min_vcs().max(NocConfig::default().vcs),
                ..NocConfig::default()
            };
            let errors = check_message_classes(&config, &topo);
            assert_eq!(errors, Vec::<String>::new(), "{choice}");
        }
    }

    #[test]
    fn only_the_recall_cycle_exists() {
        assert_eq!(undocumented_cycles(op_triggers), Vec::<Vec<String>>::new());
    }

    #[test]
    fn new_dependency_cycle_is_caught() {
        // A hypothetical protocol change where a DRAM fill could trigger
        // a fresh read request closes Request → … → Response → Request.
        fn defective(op: Op) -> &'static [Op] {
            match op {
                Op::MemFill => &[
                    Op::DataToCore,
                    Op::Invalidate,
                    Op::MemWriteback,
                    Op::ReadReq,
                ],
                other => op_triggers(other),
            }
        }
        let cycles = undocumented_cycles(defective);
        assert_eq!(cycles.len(), 1, "one new SCC, got {cycles:?}");
        assert!(
            cycles[0].contains(&"MemFill".to_string())
                && cycles[0].contains(&"ReadReq".to_string()),
            "the injected cycle runs through MemFill and ReadReq: {cycles:?}"
        );
    }

    #[test]
    fn vc_groups_partition_at_every_sweep_width() {
        for vcs in [2, 4, 6, 8] {
            assert_eq!(check_vc_groups(vcs), Vec::<String>::new(), "vcs={vcs}");
        }
    }
}
