//! Protocol-exhaustiveness analysis: the MOESI directory transition table
//! and the [`Msg`] tag encoding.
//!
//! The directory in `disco-cache::coherence` is a protocol *engine*; its
//! transition function lives in Rust `match` arms rather than a table, so
//! nothing forces it to be total over the abstract state space. This
//! module recovers the table by driving a real [`Directory`] through one
//! representative concrete state per [`StateKind`] and one call per
//! [`DirEvent`], then checks the result for unhandled (state × event)
//! pairs and abstract states unreachable from `Uncached`. Tests inject
//! deliberately incomplete tables to prove the checker rejects them.

use disco_cache::addr::LineAddr;
use disco_cache::coherence::{Directory, StateKind};
use disco_core::protocol::{Msg, Op};

/// The events the system layer can fire at a directory, mirroring the
/// public [`Directory`] API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirEvent {
    /// A core reads the line.
    Read,
    /// A core requests ownership to write.
    Write,
    /// The owner writes the dirty line back.
    Writeback,
    /// A sharer silently drops its clean copy.
    DropSharer,
    /// The bank evicts the line and recalls every copy.
    Recall,
}

impl DirEvent {
    /// Every directory event.
    pub const ALL: [DirEvent; 5] = [
        DirEvent::Read,
        DirEvent::Write,
        DirEvent::Writeback,
        DirEvent::DropSharer,
        DirEvent::Recall,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DirEvent::Read => "Read",
            DirEvent::Write => "Write",
            DirEvent::Writeback => "Writeback",
            DirEvent::DropSharer => "DropSharer",
            DirEvent::Recall => "Recall",
        }
    }
}

/// One abstract transition: in state `from`, event `event` leads to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Abstract state before the event.
    pub from: StateKind,
    /// The event applied.
    pub event: DirEvent,
    /// Abstract state after the event.
    pub to: StateKind,
}

/// An abstract MOESI transition table.
#[derive(Debug, Clone, Default)]
pub struct TransitionTable {
    /// The transitions, at most one per (state, event) pair.
    pub transitions: Vec<Transition>,
}

impl TransitionTable {
    /// The successor state for `(from, event)`, if the table handles it.
    pub fn lookup(&self, from: StateKind, event: DirEvent) -> Option<StateKind> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.event == event)
            .map(|t| t.to)
    }
}

/// Extracts the abstract transition table from the real [`Directory`] by
/// constructing one representative concrete state per [`StateKind`] and
/// applying every [`DirEvent`] to it.
pub fn extract_directory_table() -> TransitionTable {
    let addr = LineAddr(0x40);
    let mut transitions = Vec::new();
    for from in StateKind::ALL {
        for event in DirEvent::ALL {
            let mut dir = directory_in(from, addr);
            apply(&mut dir, addr, event);
            transitions.push(Transition {
                from,
                event,
                to: dir.state(addr).kind(),
            });
        }
    }
    TransitionTable { transitions }
}

/// A directory holding `addr` in a representative concrete state of
/// `kind`: core 0 is the owner where one exists, core 1 a sharer.
fn directory_in(kind: StateKind, addr: LineAddr) -> Directory {
    let mut dir = Directory::new();
    match kind {
        StateKind::Uncached => {}
        StateKind::Shared => {
            let _ = dir.read(addr, 0);
            let _ = dir.read(addr, 1);
        }
        StateKind::Owned => {
            let _ = dir.write(addr, 0);
            let _ = dir.read(addr, 1);
        }
    }
    debug_assert_eq!(dir.state(addr).kind(), kind);
    dir
}

/// Applies one event to the representative state: reads and writes come
/// from a third core (2), writebacks from the owner (0), and drops from
/// the sharer (1).
fn apply(dir: &mut Directory, addr: LineAddr, event: DirEvent) {
    match event {
        DirEvent::Read => {
            let _ = dir.read(addr, 2);
        }
        DirEvent::Write => {
            let _ = dir.write(addr, 2);
        }
        DirEvent::Writeback => dir.writeback(addr, 0),
        DirEvent::DropSharer => dir.drop_sharer(addr, 1),
        DirEvent::Recall => {
            let _ = dir.recall(addr);
        }
    }
}

/// Findings of one protocol analysis.
#[derive(Debug, Clone, Default)]
pub struct ProtocolReport {
    /// (state, event) pairs the table does not handle.
    pub missing: Vec<(StateKind, DirEvent)>,
    /// Abstract states no event sequence from `Uncached` can reach.
    pub unreachable: Vec<StateKind>,
}

impl ProtocolReport {
    /// True when the table is total and every state is reachable.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty() && self.unreachable.is_empty()
    }
}

/// Checks a transition table for totality over (state × event) and for
/// reachability of every abstract state from `Uncached`.
pub fn check_table(table: &TransitionTable) -> ProtocolReport {
    let mut report = ProtocolReport::default();
    for from in StateKind::ALL {
        for event in DirEvent::ALL {
            if table.lookup(from, event).is_none() {
                report.missing.push((from, event));
            }
        }
    }
    let mut reached = vec![StateKind::Uncached];
    let mut frontier = vec![StateKind::Uncached];
    while let Some(state) = frontier.pop() {
        for event in DirEvent::ALL {
            if let Some(next) = table.lookup(state, event) {
                if !reached.contains(&next) {
                    reached.push(next);
                    frontier.push(next);
                }
            }
        }
    }
    for state in StateKind::ALL {
        if !reached.contains(&state) {
            report.unreachable.push(state);
        }
    }
    report
}

/// Checks the [`Msg`] tag encoding: every [`Op`] must survive an
/// encode/decode roundtrip, and tag codes beyond the enum must be
/// rejected by [`Msg::try_decode`]. Returns one message per violation.
pub fn check_ops() -> Vec<String> {
    let mut errors = Vec::new();
    for op in Op::ALL {
        let msg = Msg::new(op, 5, 0x1234);
        match Msg::try_decode(msg.encode()) {
            Some(decoded) if decoded == msg => {}
            other => errors.push(format!(
                "{op:?} fails the encode/decode roundtrip: {other:?}"
            )),
        }
    }
    for code in Op::ALL.len() as u64..16 {
        if Msg::try_decode(code).is_some() {
            errors.push(format!("tag code {code} decodes but names no Op"));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracted_table_is_total_and_reachable() {
        let table = extract_directory_table();
        assert_eq!(
            table.transitions.len(),
            StateKind::ALL.len() * DirEvent::ALL.len()
        );
        let report = check_table(&table);
        assert!(
            report.is_complete(),
            "missing {:?}, unreachable {:?}",
            report.missing,
            report.unreachable
        );
    }

    #[test]
    fn extracted_transitions_match_moesi() {
        let table = extract_directory_table();
        assert_eq!(
            table.lookup(StateKind::Uncached, DirEvent::Read),
            Some(StateKind::Shared)
        );
        assert_eq!(
            table.lookup(StateKind::Uncached, DirEvent::Write),
            Some(StateKind::Owned)
        );
        assert_eq!(
            table.lookup(StateKind::Shared, DirEvent::Write),
            Some(StateKind::Owned)
        );
        assert_eq!(
            table.lookup(StateKind::Owned, DirEvent::Writeback),
            Some(StateKind::Shared)
        );
        assert_eq!(
            table.lookup(StateKind::Owned, DirEvent::Recall),
            Some(StateKind::Uncached)
        );
    }

    #[test]
    fn incomplete_table_is_rejected() {
        let mut table = extract_directory_table();
        table
            .transitions
            .retain(|t| !(t.from == StateKind::Shared && t.event == DirEvent::Write));
        let report = check_table(&table);
        assert_eq!(report.missing, vec![(StateKind::Shared, DirEvent::Write)]);
        assert!(!report.is_complete());
    }

    #[test]
    fn unreachable_state_is_rejected() {
        // Redirect every transition into Owned elsewhere: Owned becomes
        // unreachable from Uncached even though the table stays total.
        let mut table = extract_directory_table();
        for t in &mut table.transitions {
            if t.to == StateKind::Owned {
                t.to = StateKind::Shared;
            }
        }
        let report = check_table(&table);
        assert!(report.missing.is_empty());
        assert_eq!(report.unreachable, vec![StateKind::Owned]);
    }

    #[test]
    fn op_encoding_is_exhaustive() {
        assert_eq!(check_ops(), Vec::<String>::new());
    }
}
