//! Event-based 45 nm energy model for the on-chip memory subsystem
//! (NoC + NUCA), in the style of Orion 2.0 (routers/links) and CACTI
//! (SRAM banks), plus the synthesized DISCO compressor figures (§4.2).
//!
//! The paper reports only *normalized* energy, so absolute constants
//! matter less than their ratios; the defaults below are in the range
//! Orion 2.0 and CACTI 6 report for 45 nm, 64-bit flits, and 256 KB
//! banks.

/// Per-event energies in picojoules and static power in picojoules per
/// cycle per component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Writing one flit into an input buffer.
    pub buffer_write_pj: f64,
    /// Reading one flit out of an input buffer.
    pub buffer_read_pj: f64,
    /// One flit through the crossbar.
    pub crossbar_pj: f64,
    /// One allocation (VA/SA) decision.
    pub arbiter_pj: f64,
    /// One flit across an inter-router link (1 mm at 45 nm).
    pub link_pj: f64,
    /// One flit across a long-range express link (span-2 wire, so about
    /// twice the single-hop wire energy; the router stages it skips are
    /// what make the express hop cheaper overall).
    pub express_link_pj: f64,
    /// Fixed part of one L2 bank access (tag match, decoders, sense-amp
    /// setup — paid regardless of line size).
    pub bank_access_pj: f64,
    /// Data-array energy per byte actually read or written. Compressed
    /// lines touch fewer segments, so they cost proportionally less —
    /// the main cache-side energy saving of compression.
    pub bank_byte_pj: f64,
    /// One compression operation.
    pub compress_pj: f64,
    /// One decompression operation.
    pub decompress_pj: f64,
    /// Router leakage per cycle.
    pub router_static_pj: f64,
    /// Bank leakage per cycle.
    pub bank_static_pj: f64,
    /// Compressor + arbitrator leakage per cycle (only charged on
    /// configurations that have the hardware).
    pub compressor_static_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            buffer_write_pj: 2.2,
            buffer_read_pj: 1.8,
            crossbar_pj: 1.5,
            arbiter_pj: 0.2,
            link_pj: 3.6,
            express_link_pj: 7.2,
            bank_access_pj: 130.0,
            bank_byte_pj: 3.9,
            compress_pj: 28.0,
            decompress_pj: 20.0,
            router_static_pj: 0.6,
            bank_static_pj: 4.0,
            compressor_static_pj: 0.1,
        }
    }
}

/// Event counts gathered by the system simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounts {
    /// Simulated cycles.
    pub cycles: u64,
    /// Routers in the mesh.
    pub routers: u64,
    /// NUCA banks.
    pub banks: u64,
    /// Components containing de/compression hardware (banks for CC, banks
    /// + NIs for CNC, routers for DISCO).
    pub compressor_sites: u64,
    /// Buffer write events.
    pub buffer_writes: u64,
    /// Buffer read events.
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub crossbar_flits: u64,
    /// Allocation decisions.
    pub arbitrations: u64,
    /// Single-hop link traversals.
    pub link_flits: u64,
    /// Long-range express-link traversals (express-mesh only).
    pub express_flits: u64,
    /// Bank accesses (lookups + fills).
    pub bank_accesses: u64,
    /// Data-array bytes moved across all bank accesses.
    pub bank_bytes: u64,
    /// Compression operations.
    pub compressions: u64,
    /// Decompression operations.
    pub decompressions: u64,
}

/// Energy totals in picojoules, broken down by component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic NoC energy (buffers, crossbar, arbitration, links).
    pub noc_dynamic_pj: f64,
    /// NoC leakage.
    pub noc_static_pj: f64,
    /// Dynamic NUCA energy.
    pub cache_dynamic_pj: f64,
    /// NUCA leakage.
    pub cache_static_pj: f64,
    /// De/compression hardware energy (dynamic + leakage).
    pub compressor_pj: f64,
}

impl EnergyBreakdown {
    /// Total memory-subsystem energy.
    pub fn total_pj(&self) -> f64 {
        self.noc_dynamic_pj
            + self.noc_static_pj
            + self.cache_dynamic_pj
            + self.cache_static_pj
            + self.compressor_pj
    }
}

impl EnergyModel {
    /// Evaluates the model over a set of event counts.
    pub fn evaluate(&self, c: &EnergyCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            noc_dynamic_pj: c.buffer_writes as f64 * self.buffer_write_pj
                + c.buffer_reads as f64 * self.buffer_read_pj
                + c.crossbar_flits as f64 * self.crossbar_pj
                + c.arbitrations as f64 * self.arbiter_pj
                + c.link_flits as f64 * self.link_pj
                + c.express_flits as f64 * self.express_link_pj,
            noc_static_pj: (c.cycles * c.routers) as f64 * self.router_static_pj,
            cache_dynamic_pj: c.bank_accesses as f64 * self.bank_access_pj
                + c.bank_bytes as f64 * self.bank_byte_pj,
            cache_static_pj: (c.cycles * c.banks) as f64 * self.bank_static_pj,
            compressor_pj: c.compressions as f64 * self.compress_pj
                + c.decompressions as f64 * self.decompress_pj
                + (c.cycles * c.compressor_sites) as f64 * self.compressor_static_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> EnergyCounts {
        EnergyCounts {
            cycles: 1_000,
            routers: 16,
            banks: 16,
            compressor_sites: 16,
            buffer_writes: 500,
            buffer_reads: 500,
            crossbar_flits: 500,
            arbitrations: 400,
            link_flits: 450,
            express_flits: 50,
            bank_accesses: 100,
            compressions: 40,
            decompressions: 60,
            ..EnergyCounts::default()
        }
    }

    #[test]
    fn totals_are_sums() {
        let m = EnergyModel::default();
        let b = m.evaluate(&counts());
        let manual = b.noc_dynamic_pj
            + b.noc_static_pj
            + b.cache_dynamic_pj
            + b.cache_static_pj
            + b.compressor_pj;
        assert!((b.total_pj() - manual).abs() < 1e-9);
        assert!(b.total_pj() > 0.0);
    }

    #[test]
    fn fewer_flits_means_less_noc_energy() {
        let m = EnergyModel::default();
        let mut a = counts();
        let b = m.evaluate(&a);
        a.link_flits /= 2;
        a.express_flits /= 2;
        a.buffer_writes /= 2;
        a.buffer_reads /= 2;
        a.crossbar_flits /= 2;
        let c = m.evaluate(&a);
        assert!(c.noc_dynamic_pj < b.noc_dynamic_pj);
        assert_eq!(c.noc_static_pj, b.noc_static_pj);
    }

    #[test]
    fn compressor_energy_scales_with_sites() {
        let m = EnergyModel::default();
        let mut a = counts();
        a.compressions = 0;
        a.decompressions = 0;
        let one = m.evaluate(&EnergyCounts {
            compressor_sites: 16,
            ..a
        });
        let two = m.evaluate(&EnergyCounts {
            compressor_sites: 32,
            ..a
        });
        assert!(two.compressor_pj > one.compressor_pj);
    }

    #[test]
    fn express_flits_cost_the_express_rate() {
        let m = EnergyModel::default();
        let b = m.evaluate(&EnergyCounts {
            express_flits: 10,
            ..EnergyCounts::default()
        });
        assert!((b.noc_dynamic_pj - 10.0 * m.express_link_pj).abs() < 1e-9);
        assert!(m.express_link_pj > m.link_pj, "longer wire costs more");
    }

    #[test]
    fn zero_counts_zero_energy() {
        let m = EnergyModel::default();
        assert_eq!(m.evaluate(&EnergyCounts::default()).total_pj(), 0.0);
    }
}

disco_snapshot::snap_fields!(EnergyModel {
    buffer_write_pj,
    buffer_read_pj,
    crossbar_pj,
    arbiter_pj,
    link_pj,
    express_link_pj,
    bank_access_pj,
    bank_byte_pj,
    compress_pj,
    decompress_pj,
    router_static_pj,
    bank_static_pj,
    compressor_static_pj,
});
