//! 45 nm area model reproducing the §4.3 overhead estimation.
//!
//! The paper synthesizes the DISCO units with FreePDK45: the delta-based
//! de/compressor plus arbitrator for 64-bit flits adds **17.2 %** to the
//! router, which is **< 1 %** of the 4 MB NUCA's area; CNC needs roughly
//! **2×** DISCO's compressor area because it duplicates the hardware at
//! both the cache controller and every NI.

/// Component areas in mm² at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One 5-port, 2-VC, 8-deep, 64-bit 3-stage router.
    pub router_mm2: f64,
    /// DISCO de/compressor + arbitrator attached to one router.
    pub disco_unit_mm2: f64,
    /// The whole 4 MB NUCA data + tag array.
    pub nuca_4mb_mm2: f64,
    /// One cache-controller compressor (CC's per-bank unit).
    pub cc_unit_mm2: f64,
    /// One NI packet de/compressor (CNC's second level).
    pub ni_unit_mm2: f64,
    /// One long-range express channel: span-2 wiring plus the two extra
    /// router ports (buffer + crossbar column) it terminates in.
    pub express_link_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        // Router area from Orion-2.0-class estimates for this
        // configuration; the DISCO unit is sized to the paper's measured
        // 17.2 % of it. CC/NI units are each about the same logic as a
        // DISCO unit (same codec datapath, minus the arbitrator, plus
        // packetization glue).
        let router = 0.092;
        AreaModel {
            router_mm2: router,
            disco_unit_mm2: router * 0.172,
            nuca_4mb_mm2: 26.0,
            cc_unit_mm2: router * 0.158,
            ni_unit_mm2: router * 0.158,
            // Two ports on a 5-port router is ~2/5 of its buffered
            // datapath, shared across the link's two endpoints, plus the
            // long wire: ~12 % of a router per express link.
            express_link_mm2: router * 0.12,
        }
    }
}

/// Area totals for one placement over an `n`-tile CMP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementArea {
    /// Total compression-hardware area added.
    pub added_mm2: f64,
    /// Added area as a fraction of total router area.
    pub of_routers: f64,
    /// Added area as a fraction of the NUCA cache.
    pub of_cache: f64,
}

impl AreaModel {
    /// DISCO: one unit per router.
    pub fn disco(&self, tiles: usize) -> PlacementArea {
        self.placement(tiles as f64 * self.disco_unit_mm2, tiles)
    }

    /// CC: one unit per cache bank.
    pub fn cc(&self, tiles: usize) -> PlacementArea {
        self.placement(tiles as f64 * self.cc_unit_mm2, tiles)
    }

    /// CNC: CC plus one unit per NI.
    pub fn cnc(&self, tiles: usize) -> PlacementArea {
        self.placement(tiles as f64 * (self.cc_unit_mm2 + self.ni_unit_mm2), tiles)
    }

    /// Express-link overlay: `links` long-range channels over an
    /// `n`-tile grid (a topology cost, reported in the same
    /// router-relative terms as the compression placements).
    pub fn express(&self, tiles: usize, links: usize) -> PlacementArea {
        self.placement(links as f64 * self.express_link_mm2, tiles)
    }

    fn placement(&self, added: f64, tiles: usize) -> PlacementArea {
        PlacementArea {
            added_mm2: added,
            of_routers: added / (tiles as f64 * self.router_mm2),
            of_cache: added / self.nuca_4mb_mm2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disco_matches_paper_percentages() {
        let m = AreaModel::default();
        let d = m.disco(16);
        assert!((d.of_routers - 0.172).abs() < 1e-6, "17.2% of router area");
        assert!(d.of_cache < 0.01, "under 1% of the 4MB NUCA");
    }

    #[test]
    fn cnc_needs_about_twice_disco() {
        let m = AreaModel::default();
        let ratio = m.cnc(16).added_mm2 / m.disco(16).added_mm2;
        assert!((1.6..2.2).contains(&ratio), "CNC/DISCO area ratio {ratio}");
    }

    #[test]
    fn express_overlay_scales_with_link_count() {
        let m = AreaModel::default();
        // A 4×4 span-2 express mesh has 16 live express links.
        let x = m.express(16, 16);
        assert!((x.added_mm2 - 16.0 * m.express_link_mm2).abs() < 1e-12);
        // The overlay costs less per router than a second router.
        assert!(x.of_routers < 1.0);
        assert_eq!(m.express(16, 0).added_mm2, 0.0);
    }

    #[test]
    fn percentages_are_tile_count_invariant() {
        let m = AreaModel::default();
        assert!((m.disco(16).of_routers - m.disco(64).of_routers).abs() < 1e-12);
    }
}
