//! Per-run energy accounting: the event counts a run gathered, the
//! breakdown the model evaluated from them, and the derived efficiency
//! metrics — one value to attach to a simulation report, journal to a
//! sweep point, or serve from a checkpointed job.

use crate::model::{EnergyBreakdown, EnergyCounts, EnergyModel};

/// Everything the energy model can say about one run.
///
/// A [`SimReport`](../disco_core/struct.SimReport.html) carries the raw
/// `EnergyCounts` and the evaluated `EnergyBreakdown` separately for
/// backward compatibility; this type bundles them with the model that
/// priced them so downstream consumers (the stats file, the DSE
/// journal, served jobs) get one self-describing record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// The raw event counts the run gathered.
    pub counts: EnergyCounts,
    /// The per-component picojoule totals.
    pub breakdown: EnergyBreakdown,
}

impl EnergyReport {
    /// Prices `counts` under `model`.
    pub fn evaluate(model: &EnergyModel, counts: EnergyCounts) -> Self {
        EnergyReport {
            counts,
            breakdown: model.evaluate(&counts),
        }
    }

    /// Total memory-subsystem energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.breakdown.total_pj()
    }

    /// Mean picojoules per simulated cycle — the power proxy the
    /// Pareto frontier minimizes (total energy divided by runtime would
    /// double-count speed, which latency already scores).
    pub fn pj_per_cycle(&self) -> f64 {
        if self.counts.cycles == 0 {
            return 0.0;
        }
        self.total_pj() / self.counts.cycles as f64
    }

    /// Mean dynamic NoC picojoules per link traversal (express links
    /// included) — the per-flit transport cost compression lowers.
    pub fn noc_pj_per_flit(&self) -> f64 {
        let flits = self.counts.link_flits + self.counts.express_flits;
        if flits == 0 {
            return 0.0;
        }
        self.breakdown.noc_dynamic_pj / flits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_matches_model() {
        let model = EnergyModel::default();
        let counts = EnergyCounts {
            cycles: 100,
            routers: 4,
            banks: 4,
            link_flits: 50,
            express_flits: 10,
            ..EnergyCounts::default()
        };
        let r = EnergyReport::evaluate(&model, counts);
        assert_eq!(r.breakdown, model.evaluate(&counts));
        assert!((r.total_pj() - r.breakdown.total_pj()).abs() < 1e-12);
        assert!(r.pj_per_cycle() > 0.0);
        assert!(r.noc_pj_per_flit() > 0.0);
    }

    #[test]
    fn rates_handle_empty_runs() {
        let r = EnergyReport::evaluate(&EnergyModel::default(), EnergyCounts::default());
        assert_eq!(r.pj_per_cycle(), 0.0);
        assert_eq!(r.noc_pj_per_flit(), 0.0);
    }
}
