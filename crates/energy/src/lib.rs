#![warn(missing_docs)]

//! 45 nm event-based energy and area models for the DISCO reproduction.
//!
//! Stands in for the paper's tooling (§4.2–4.3): Orion 2.0 for NoC power,
//! CACTI for the NUCA banks, and Design-Compiler synthesis (FreePDK45) for
//! the DISCO compressor and arbitrator. The simulator counts events
//! ([`model::EnergyCounts`]); [`model::EnergyModel`] converts them to
//! picojoules, and [`area::AreaModel`] reproduces the §4.3 area overhead
//! comparison (DISCO = 17.2 % of a router, < 1 % of the 4 MB NUCA,
//! ~half of CNC's compressor area).
//!
//! ```
//! use disco_energy::{AreaModel, EnergyModel};
//! use disco_energy::model::EnergyCounts;
//!
//! let energy = EnergyModel::default().evaluate(&EnergyCounts {
//!     cycles: 1_000, routers: 16, banks: 16, link_flits: 5_000,
//!     ..EnergyCounts::default()
//! });
//! assert!(energy.total_pj() > 0.0);
//! let area = AreaModel::default().disco(16);
//! assert!(area.of_cache < 0.01);
//! ```

pub mod area;
pub mod model;
pub mod report;

pub use area::{AreaModel, PlacementArea};
pub use model::{EnergyBreakdown, EnergyCounts, EnergyModel};
pub use report::EnergyReport;
