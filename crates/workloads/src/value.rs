//! Deterministic cache-line value synthesis with per-benchmark
//! compressibility profiles.
//!
//! The DISCO mechanisms are driven by how well lines compress, so the
//! trace substitution must reproduce PARSEC's *value* behaviour, not just
//! its addresses. Each benchmark mixes five canonical line shapes in
//! different proportions; a line's shape and content are a pure function
//! of `(address, version)`, so re-reading an unmodified line always
//! yields identical bytes (as in a real memory), while writes bump the
//! version and produce new values with the same statistics.

use disco_compress::{CacheLine, LINE_BYTES};

/// Mix of line shapes generated for a benchmark. Fractions sum to ≤ 1;
/// the remainder is incompressible random data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueProfile {
    /// All-zero lines (fresh allocations, sparse matrices).
    pub zero: f64,
    /// 64-bit values clustered near a common base (pointer arrays,
    /// indices) — ideal for the delta codec.
    pub near_base: f64,
    /// Small 32-bit integers (counters, flags, pixel values).
    pub small_int: f64,
    /// Repeated 32-bit patterns (initialized buffers, RGBA fills).
    pub repeated: f64,
    /// Low-delta floating-point-like data (simulation state: same
    /// exponent, drifting mantissa).
    pub float_like: f64,
}

impl ValueProfile {
    /// A balanced default (moderate compressibility).
    pub fn balanced() -> Self {
        ValueProfile {
            zero: 0.15,
            near_base: 0.2,
            small_int: 0.2,
            repeated: 0.1,
            float_like: 0.15,
        }
    }

    fn validate(&self) {
        let sum = self.zero + self.near_base + self.small_int + self.repeated + self.float_like;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&sum),
            "value profile fractions must sum to at most 1 (got {sum})"
        );
        for f in [
            self.zero,
            self.near_base,
            self.small_int,
            self.repeated,
            self.float_like,
        ] {
            assert!((0.0..=1.0).contains(&f), "fractions must lie in [0, 1]");
        }
    }
}

/// SplitMix64: a tiny, high-quality deterministic hash/PRNG step.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generates line values for one benchmark.
///
/// ```
/// use disco_workloads::value::{ValueModel, ValueProfile};
///
/// let model = ValueModel::new(ValueProfile::balanced(), 7);
/// let a = model.line(0x100, 0);
/// assert_eq!(a, model.line(0x100, 0), "values are deterministic");
/// assert_ne!(a, model.line(0x100, 1), "writes produce new values");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ValueModel {
    profile: ValueProfile,
    seed: u64,
}

impl ValueModel {
    /// Builds a model.
    ///
    /// # Panics
    ///
    /// Panics if the profile fractions are out of range.
    pub fn new(profile: ValueProfile, seed: u64) -> Self {
        profile.validate();
        ValueModel { profile, seed }
    }

    /// The profile in use.
    pub fn profile(&self) -> &ValueProfile {
        &self.profile
    }

    /// The value of line `addr` at write-`version`.
    pub fn line(&self, addr: u64, version: u32) -> CacheLine {
        let h = splitmix(self.seed ^ splitmix(addr) ^ ((version as u64) << 32));
        let pick = (h >> 11) as f64 / (1u64 << 53) as f64;
        let p = &self.profile;
        let mut acc = p.zero;
        if pick < acc {
            return CacheLine::zeroed();
        }
        acc += p.near_base;
        if pick < acc {
            return self.near_base_line(h);
        }
        acc += p.small_int;
        if pick < acc {
            return self.small_int_line(h);
        }
        acc += p.repeated;
        if pick < acc {
            return self.repeated_line(h);
        }
        acc += p.float_like;
        if pick < acc {
            return self.float_like_line(h);
        }
        self.random_line(h)
    }

    fn near_base_line(&self, h: u64) -> CacheLine {
        // Pointers into the same region: base + small multiples of 8.
        let base = splitmix(h ^ 1) & 0x0000_7fff_ffff_ffc0;
        let mut words = [0u64; 8];
        let mut s = h;
        for w in words.iter_mut() {
            s = splitmix(s);
            *w = base.wrapping_add((s % 16) * 8);
        }
        words[0] = base;
        CacheLine::from_u64_words(words)
    }

    fn small_int_line(&self, h: u64) -> CacheLine {
        let mut words = [0u32; 16];
        let mut s = h;
        for w in words.iter_mut() {
            s = splitmix(s);
            *w = (s % 256) as u32;
        }
        CacheLine::from_u32_words(words)
    }

    fn repeated_line(&self, h: u64) -> CacheLine {
        let v = (splitmix(h ^ 2) & 0xffff_ffff) as u32;
        CacheLine::from_u32_words([v; 16])
    }

    fn float_like_line(&self, h: u64) -> CacheLine {
        // Same sign+exponent, drifting mantissa low bits: compressible by
        // delta/BDI at 2-4 byte width, resistant to FPC's integer
        // patterns — mirrors real FP simulation state.
        let exp = 0x3fe0_0000_0000_0000u64 | ((h & 0xf) << 48);
        let mut words = [0u64; 8];
        let mut s = h;
        for w in words.iter_mut() {
            s = splitmix(s);
            *w = exp | (s & 0xffff);
        }
        CacheLine::from_u64_words(words)
    }

    fn random_line(&self, h: u64) -> CacheLine {
        let mut bytes = [0u8; LINE_BYTES];
        let mut s = h ^ 3;
        for chunk in bytes.chunks_mut(8) {
            s = splitmix(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        CacheLine::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_compress::{scheme::Compressor, Codec, CompressionStats};

    #[test]
    fn deterministic_per_addr_version() {
        let m = ValueModel::new(ValueProfile::balanced(), 42);
        for addr in [0u64, 7, 1_000_003] {
            assert_eq!(m.line(addr, 3), m.line(addr, 3));
        }
        assert_ne!(m.line(1, 0), m.line(2, 0));
    }

    #[test]
    fn zero_profile_gives_zero_lines() {
        let m = ValueModel::new(
            ValueProfile {
                zero: 1.0,
                near_base: 0.0,
                small_int: 0.0,
                repeated: 0.0,
                float_like: 0.0,
            },
            1,
        );
        for addr in 0..100 {
            assert!(m.line(addr, 0).is_zero());
        }
    }

    #[test]
    fn random_profile_is_incompressible() {
        let m = ValueModel::new(
            ValueProfile {
                zero: 0.0,
                near_base: 0.0,
                small_int: 0.0,
                repeated: 0.0,
                float_like: 0.0,
            },
            1,
        );
        let codec = Codec::delta();
        let mut stats = CompressionStats::new();
        for addr in 0..200 {
            stats.record(&codec.compress(&m.line(addr, 0)));
        }
        assert!(stats.mean_ratio() < 1.05, "ratio {}", stats.mean_ratio());
    }

    #[test]
    fn balanced_profile_compresses_well() {
        let m = ValueModel::new(ValueProfile::balanced(), 1);
        let codec = Codec::delta();
        let mut stats = CompressionStats::new();
        for addr in 0..500 {
            stats.record(&codec.compress(&m.line(addr, 0)));
        }
        assert!(stats.mean_ratio() > 1.3, "ratio {}", stats.mean_ratio());
    }

    #[test]
    fn profile_fractions_roughly_respected() {
        let m = ValueModel::new(
            ValueProfile {
                zero: 0.5,
                near_base: 0.0,
                small_int: 0.0,
                repeated: 0.0,
                float_like: 0.0,
            },
            9,
        );
        let zeros = (0..2000).filter(|&a| m.line(a, 0).is_zero()).count();
        assert!(
            (800..1200).contains(&zeros),
            "got {zeros} zero lines of 2000"
        );
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn overfull_profile_rejected() {
        let _ = ValueModel::new(
            ValueProfile {
                zero: 0.5,
                near_base: 0.5,
                small_int: 0.5,
                repeated: 0.0,
                float_like: 0.0,
            },
            0,
        );
    }
}

disco_snapshot::snap_fields!(ValueProfile {
    zero,
    near_base,
    small_int,
    repeated,
    float_like,
});
