//! The twelve PARSEC-2.1 benchmarks as parametrized workload profiles.
//!
//! We cannot run gem5 + PARSEC binaries; instead each benchmark is a
//! profile calibrated to its published characterization (Bienia et al.,
//! PACT'08 and later cache studies): working-set size (drives LLC miss
//! rate and NoC load), access intensity (drives queuing — the resource
//! DISCO harvests), read/write mix and sharing (drives coherence
//! traffic), spatial locality, and the value-compressibility mix.

use crate::value::ValueProfile;
use std::fmt;

/// A PARSEC-2.1 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
}

impl Benchmark {
    /// All benchmarks, in the paper's alphabetical figure order.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Facesim,
        Benchmark::Ferret,
        Benchmark::Fluidanimate,
        Benchmark::Freqmine,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
        Benchmark::Vips,
        Benchmark::X264,
    ];

    /// Lower-case name as printed on figure axes.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Facesim => "facesim",
            Benchmark::Ferret => "ferret",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Vips => "vips",
            Benchmark::X264 => "x264",
        }
    }

    /// The calibrated workload profile.
    pub fn profile(self) -> WorkloadProfile {
        use Benchmark::*;
        match self {
            // Small working set, FP option pricing, negligible sharing.
            Blackscholes => WorkloadProfile {
                benchmark: self,
                working_set_lines: 5_000,
                intensity: 2.1,
                write_frac: 0.22,
                shared_frac: 0.04,
                stride_frac: 0.55,
                locality: 2.0,
                value: ValueProfile {
                    zero: 0.18,
                    near_base: 0.08,
                    small_int: 0.10,
                    repeated: 0.06,
                    float_like: 0.38,
                },
            },
            // Computer-vision pipeline, moderate sharing of body model.
            Bodytrack => WorkloadProfile {
                benchmark: self,
                working_set_lines: 9_000,
                intensity: 2.7,
                write_frac: 0.26,
                shared_frac: 0.18,
                stride_frac: 0.45,
                locality: 1.8,
                value: ValueProfile {
                    zero: 0.22,
                    near_base: 0.12,
                    small_int: 0.22,
                    repeated: 0.08,
                    float_like: 0.16,
                },
            },
            // Huge pointer-chasing working set: the LLC-stressing outlier.
            Canneal => WorkloadProfile {
                benchmark: self,
                working_set_lines: 120_000,
                intensity: 3.6,
                write_frac: 0.18,
                shared_frac: 0.30,
                stride_frac: 0.08,
                locality: 1.05,
                value: ValueProfile {
                    zero: 0.10,
                    near_base: 0.42,
                    small_int: 0.12,
                    repeated: 0.04,
                    float_like: 0.04,
                },
            },
            // Streaming dedup pipeline: hashes compress poorly, metadata well.
            Dedup => WorkloadProfile {
                benchmark: self,
                working_set_lines: 16_000,
                intensity: 3.9,
                write_frac: 0.30,
                shared_frac: 0.22,
                stride_frac: 0.50,
                locality: 1.6,
                value: ValueProfile {
                    zero: 0.20,
                    near_base: 0.14,
                    small_int: 0.12,
                    repeated: 0.06,
                    float_like: 0.04,
                },
            },
            // Physics FP simulation over a large mesh.
            Facesim => WorkloadProfile {
                benchmark: self,
                working_set_lines: 24_000,
                intensity: 3.0,
                write_frac: 0.32,
                shared_frac: 0.12,
                stride_frac: 0.60,
                locality: 1.5,
                value: ValueProfile {
                    zero: 0.14,
                    near_base: 0.10,
                    small_int: 0.06,
                    repeated: 0.05,
                    float_like: 0.45,
                },
            },
            // Content-similarity search pipeline, shared database.
            Ferret => WorkloadProfile {
                benchmark: self,
                working_set_lines: 14_000,
                intensity: 3.3,
                write_frac: 0.24,
                shared_frac: 0.34,
                stride_frac: 0.35,
                locality: 1.7,
                value: ValueProfile {
                    zero: 0.16,
                    near_base: 0.18,
                    small_int: 0.16,
                    repeated: 0.06,
                    float_like: 0.14,
                },
            },
            // SPH fluid solver: FP with neighbour lists.
            Fluidanimate => WorkloadProfile {
                benchmark: self,
                working_set_lines: 12_000,
                intensity: 2.9,
                write_frac: 0.34,
                shared_frac: 0.10,
                stride_frac: 0.40,
                locality: 1.7,
                value: ValueProfile {
                    zero: 0.17,
                    near_base: 0.16,
                    small_int: 0.08,
                    repeated: 0.04,
                    float_like: 0.40,
                },
            },
            // FP-growth itemset mining: integer-heavy trees.
            Freqmine => WorkloadProfile {
                benchmark: self,
                working_set_lines: 12_000,
                intensity: 3.1,
                write_frac: 0.28,
                shared_frac: 0.16,
                stride_frac: 0.30,
                locality: 1.8,
                value: ValueProfile {
                    zero: 0.24,
                    near_base: 0.20,
                    small_int: 0.26,
                    repeated: 0.05,
                    float_like: 0.02,
                },
            },
            // Streaming k-means: large sequential sweeps, little reuse.
            Streamcluster => WorkloadProfile {
                benchmark: self,
                working_set_lines: 90_000,
                intensity: 4.2,
                write_frac: 0.16,
                shared_frac: 0.26,
                stride_frac: 0.75,
                locality: 1.05,
                value: ValueProfile {
                    zero: 0.12,
                    near_base: 0.08,
                    small_int: 0.10,
                    repeated: 0.06,
                    float_like: 0.34,
                },
            },
            // Tiny working set: mostly L1-resident.
            Swaptions => WorkloadProfile {
                benchmark: self,
                working_set_lines: 3_000,
                intensity: 1.8,
                write_frac: 0.20,
                shared_frac: 0.02,
                stride_frac: 0.45,
                locality: 2.0,
                value: ValueProfile {
                    zero: 0.15,
                    near_base: 0.08,
                    small_int: 0.10,
                    repeated: 0.05,
                    float_like: 0.36,
                },
            },
            // Image pipeline: strided filters over pixel buffers.
            Vips => WorkloadProfile {
                benchmark: self,
                working_set_lines: 15_000,
                intensity: 3.6,
                write_frac: 0.30,
                shared_frac: 0.14,
                stride_frac: 0.70,
                locality: 1.5,
                value: ValueProfile {
                    zero: 0.20,
                    near_base: 0.08,
                    small_int: 0.30,
                    repeated: 0.14,
                    float_like: 0.02,
                },
            },
            // Video encode: motion vectors and residuals, many zeros.
            X264 => WorkloadProfile {
                benchmark: self,
                working_set_lines: 10_000,
                intensity: 3.5,
                write_frac: 0.36,
                shared_frac: 0.20,
                stride_frac: 0.55,
                locality: 1.7,
                value: ValueProfile {
                    zero: 0.32,
                    near_base: 0.06,
                    small_int: 0.28,
                    repeated: 0.10,
                    float_like: 0.02,
                },
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Which benchmark this models.
    pub benchmark: Benchmark,
    /// Distinct 64 B lines in the global working set.
    pub working_set_lines: usize,
    /// Mean memory accesses per core per 100 cycles.
    pub intensity: f64,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Fraction of accesses that target the shared region.
    pub shared_frac: f64,
    /// Fraction of accesses that continue a sequential/strided walk.
    pub stride_frac: f64,
    /// Temporal-locality skew (≥ 1; higher = hotter hot set).
    pub locality: f64,
    /// Line-value mix.
    pub value: ValueProfile,
}

impl WorkloadProfile {
    /// Scales the working set for a different machine size, keeping
    /// per-bank pressure comparable (used by the Fig. 8 scalability
    /// sweep).
    pub fn scaled_to(&self, cores: usize) -> WorkloadProfile {
        let mut p = *self;
        p.working_set_lines = (p.working_set_lines * cores).div_ceil(16);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.working_set_lines > 0);
            assert!(p.intensity > 0.0);
            assert!((0.0..=1.0).contains(&p.write_frac));
            assert!((0.0..=1.0).contains(&p.shared_frac));
            assert!((0.0..=1.0).contains(&p.stride_frac));
            assert!(p.locality >= 1.0);
            // ValueModel::new validates the value profile fractions.
            let _ = crate::value::ValueModel::new(p.value, 0);
        }
    }

    #[test]
    fn canneal_is_the_llc_outlier() {
        let c = Benchmark::Canneal.profile();
        for b in Benchmark::ALL {
            assert!(c.working_set_lines >= b.profile().working_set_lines);
        }
    }

    #[test]
    fn names_unique_and_lowercase() {
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert!(names.iter().all(|n| n
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())));
    }

    #[test]
    fn scaling_preserves_per_core_footprint() {
        let p = Benchmark::Ferret.profile();
        let p64 = p.scaled_to(64);
        assert_eq!(p64.working_set_lines, p.working_set_lines * 4);
        let p4 = p.scaled_to(4);
        assert_eq!(p4.working_set_lines, p.working_set_lines / 4);
    }
}

impl disco_snapshot::Snap for Benchmark {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        let tag = Benchmark::ALL
            .iter()
            .position(|b| b == self)
            .expect("ALL covers every benchmark") as u8;
        w.put(&tag);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        let tag: u8 = r.take()?;
        Benchmark::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| disco_snapshot::malformed(format!("Benchmark tag {tag}")))
    }
}

disco_snapshot::snap_fields!(WorkloadProfile {
    benchmark,
    working_set_lines,
    intensity,
    write_frac,
    shared_frac,
    stride_frac,
    locality,
    value,
});
