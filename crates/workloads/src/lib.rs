#![warn(missing_docs)]

//! Synthetic PARSEC-2.1-like workloads for the DISCO reproduction.
//!
//! The paper evaluates on gem5 running PARSEC-2.1; this crate substitutes
//! deterministic generators calibrated per benchmark (see `DESIGN.md` §3):
//!
//! - [`benchmark::Benchmark`] — the twelve PARSEC workloads as
//!   parametrized profiles (working set, intensity, sharing, locality,
//!   value mix).
//! - [`trace::TraceGenerator`] — per-core address/timing traces.
//! - [`value::ValueModel`] — deterministic line *values*, so compression
//!   ratios are measured on real bytes.
//! - [`io`] — plain-text trace save/load for external traces and exact
//!   replay.
//!
//! ```
//! use disco_workloads::{Benchmark, TraceGenerator};
//!
//! let traces = TraceGenerator::new(Benchmark::Ferret.profile(), 16, 1).generate(100);
//! assert_eq!(traces.len(), 16);
//! ```

pub mod benchmark;
pub mod io;
pub mod rng;
pub mod trace;
pub mod value;

pub use benchmark::{Benchmark, WorkloadProfile};
pub use io::{read_traces, write_traces, TraceIoError};
pub use trace::{MemAccess, TraceGenerator};
pub use value::{ValueModel, ValueProfile};
