//! Plain-text trace serialization, so externally captured memory traces
//! (from a real simulator or a production profiler) can drive the
//! system, and generated traces can be archived for exact replay.
//!
//! Format: one access per line, `<core> <gap> <line-hex> <R|W>`, with
//! `#` comments and blank lines ignored:
//!
//! ```text
//! # core gap line rw
//! 0 3 1a2b R
//! 0 17 1a2c W
//! 1 2 0044 R
//! ```

use crate::trace::MemAccess;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// A malformed trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that does not parse.
    Parse {
        /// 1-based line number in the input.
        line_number: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse {
                line_number,
                message,
            } => {
                write!(f, "trace line {line_number}: {message}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes per-core traces to `writer`. A `&mut` reference works as the
/// writer.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_traces<W: Write>(
    mut writer: W,
    traces: &[Vec<MemAccess>],
) -> Result<(), TraceIoError> {
    writeln!(writer, "# disco trace v1: core gap line rw")?;
    for (core, trace) in traces.iter().enumerate() {
        for a in trace {
            writeln!(
                writer,
                "{core} {} {:x} {}",
                a.gap,
                a.line,
                if a.write { 'W' } else { 'R' }
            )?;
        }
    }
    Ok(())
}

/// Reads per-core traces from `reader`. Cores may appear in any order;
/// the result is indexed by core id with gaps in the id space yielding
/// empty traces. A `&mut` reference works as the reader.
///
/// # Errors
///
/// Fails on I/O errors or malformed lines.
pub fn read_traces<R: Read>(reader: R) -> Result<Vec<Vec<MemAccess>>, TraceIoError> {
    let mut traces: Vec<Vec<MemAccess>> = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line_number = idx + 1;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut fields = body.split_whitespace();
        let parse_err = |message: String| TraceIoError::Parse {
            line_number,
            message,
        };
        let core: usize = fields
            .next()
            .ok_or_else(|| parse_err("missing core".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad core: {e}")))?;
        let gap: u64 = fields
            .next()
            .ok_or_else(|| parse_err("missing gap".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad gap: {e}")))?;
        let line_field = fields
            .next()
            .ok_or_else(|| parse_err("missing line".into()))?;
        let addr = u64::from_str_radix(line_field, 16)
            .map_err(|e| parse_err(format!("bad line address: {e}")))?;
        let write = match fields.next() {
            Some("R") | Some("r") => false,
            Some("W") | Some("w") => true,
            other => return Err(parse_err(format!("bad access kind {other:?}"))),
        };
        if let Some(extra) = fields.next() {
            return Err(parse_err(format!("trailing field {extra:?}")));
        }
        if traces.len() <= core {
            traces.resize_with(core + 1, Vec::new);
        }
        traces[core].push(MemAccess {
            gap,
            line: addr,
            write,
        });
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;
    use crate::trace::TraceGenerator;

    #[test]
    fn roundtrip_generated_traces() {
        let traces = TraceGenerator::new(Benchmark::Vips.profile(), 4, 9).generate(200);
        let mut buf = Vec::new();
        write_traces(&mut buf, &traces).expect("write");
        let back = read_traces(buf.as_slice()).expect("read");
        assert_eq!(back, traces);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n0 5 ff R # inline comment\n\n1 2 a0 W\n";
        let traces = read_traces(text.as_bytes()).expect("read");
        assert_eq!(traces.len(), 2);
        assert_eq!(
            traces[0],
            vec![MemAccess {
                gap: 5,
                line: 0xff,
                write: false
            }]
        );
        assert_eq!(
            traces[1],
            vec![MemAccess {
                gap: 2,
                line: 0xa0,
                write: true
            }]
        );
    }

    #[test]
    fn sparse_core_ids_leave_empty_traces() {
        let traces = read_traces("3 1 10 R\n".as_bytes()).expect("read");
        assert_eq!(traces.len(), 4);
        assert!(traces[0].is_empty() && traces[2].is_empty());
        assert_eq!(traces[3].len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_traces("0 1 zz R\n".as_bytes()).expect_err("bad hex");
        match err {
            TraceIoError::Parse {
                line_number,
                message,
            } => {
                assert_eq!(line_number, 1);
                assert!(message.contains("line address"), "{message}");
            }
            other => panic!("wrong error {other:?}"),
        }
        let err = read_traces("0 1 aa X\n".as_bytes()).expect_err("bad rw");
        assert!(matches!(err, TraceIoError::Parse { .. }));
        let err = read_traces("0 1 aa R extra\n".as_bytes()).expect_err("trailing");
        assert!(format!("{err}").contains("trailing"));
    }
}
