//! Small, self-contained deterministic PRNG for trace generation.
//!
//! The repo must build with no network access, so the external `rand`
//! crate is replaced by this xoshiro256++ implementation (Blackman &
//! Vigna), seeded through SplitMix64 exactly as `rand` seeds `StdRng`
//! substitutes. Streams are fully determined by the seed, which is all
//! the simulator needs — statistical quality far exceeds what synthetic
//! trace generation can distinguish.

/// SplitMix64 step: expands a 64-bit seed into independent state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// ```
/// use disco_workloads::rng::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below(range.end - range.start)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn gen_below_handles_powers_of_two_and_odd_bounds() {
        let mut r = Rng64::seed_from_u64(11);
        for bound in [1u64, 2, 3, 7, 8, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }
}
