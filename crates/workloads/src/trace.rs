//! Per-core memory trace generation from a workload profile.

use crate::benchmark::WorkloadProfile;
use crate::rng::Rng64;

/// One memory access in a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Cycles since the previous access of the same core.
    pub gap: u64,
    /// Line-granular address (64 B units).
    pub line: u64,
    /// True for a store.
    pub write: bool,
}

/// Generates deterministic per-core traces for a profile.
///
/// Address stream: each core owns a private slice of the working set and
/// shares a common region; accesses either continue a strided walk
/// (spatial locality) or jump to a skew-distributed line (temporal
/// locality), with `shared_frac` of them landing in the shared region.
/// Inter-access gaps are geometric with mean `100 / intensity`.
///
/// ```
/// use disco_workloads::{Benchmark, TraceGenerator};
///
/// let gen = TraceGenerator::new(Benchmark::Dedup.profile(), 16, 42);
/// let traces = gen.generate(1_000);
/// assert_eq!(traces.len(), 16);
/// assert!(traces.iter().all(|t| t.len() == 1_000));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    cores: usize,
    seed: u64,
}

impl TraceGenerator {
    /// Builds a generator for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(profile: WorkloadProfile, cores: usize, seed: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        TraceGenerator {
            profile,
            cores,
            seed,
        }
    }

    /// The profile driving generation.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Produces `len` accesses for every core.
    pub fn generate(&self, len: usize) -> Vec<Vec<MemAccess>> {
        (0..self.cores)
            .map(|c| self.generate_core(c, len))
            .collect()
    }

    /// Produces one core's trace.
    pub fn generate_core(&self, core: usize, len: usize) -> Vec<MemAccess> {
        let p = &self.profile;
        let mut rng = Rng64::seed_from_u64(self.seed ^ ((core as u64) << 32) ^ 0x5eed);
        // Region layout: [shared | core0 private | core1 private | ...]
        let shared_lines = ((p.working_set_lines as f64) * p.shared_frac.max(0.02)).ceil() as u64;
        let private_lines =
            ((p.working_set_lines as u64).saturating_sub(shared_lines) / self.cores as u64).max(16);
        let private_base = shared_lines + core as u64 * private_lines;
        let mean_gap = (100.0 / p.intensity).max(1.0);
        let mut walker = private_base + rng.gen_range(0..private_lines);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let shared = rng.gen_bool(p.shared_frac);
            let line = if rng.gen_bool(p.stride_frac) {
                // Continue the strided walk (wrapping within the region).
                walker += 1;
                if shared {
                    walker % shared_lines.max(1)
                } else {
                    if walker >= private_base + private_lines {
                        walker = private_base;
                    }
                    walker
                }
            } else {
                // Skewed random jump: u^locality biases toward low indices
                // (the hot end of the region).
                let u: f64 = rng.gen_f64();
                let skewed = u.powf(p.locality);

                if shared {
                    (skewed * shared_lines as f64) as u64
                } else {
                    let idx = (skewed * private_lines as f64) as u64;
                    walker = private_base + idx;
                    private_base + idx
                }
            };
            let gap = Self::geometric(&mut rng, mean_gap);
            out.push(MemAccess {
                gap,
                line,
                write: rng.gen_bool(p.write_frac),
            });
        }
        out
    }

    /// Geometric inter-arrival with the given mean (≥ 1).
    fn geometric(rng: &mut Rng64, mean: f64) -> u64 {
        let u: f64 = rng.gen_f64().max(1e-12);
        let g = (-u.ln() * mean).round() as u64;
        g.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;

    fn gen(b: Benchmark) -> TraceGenerator {
        TraceGenerator::new(b.profile(), 16, 7)
    }

    #[test]
    fn deterministic_for_seed() {
        let a = gen(Benchmark::Ferret).generate(500);
        let b = gen(Benchmark::Ferret).generate(500);
        assert_eq!(a, b);
        let c = TraceGenerator::new(Benchmark::Ferret.profile(), 16, 8).generate(500);
        assert_ne!(a, c);
    }

    #[test]
    fn cores_have_disjoint_private_regions() {
        let traces = gen(Benchmark::Swaptions).generate(2_000);
        let p = Benchmark::Swaptions.profile();
        let shared_lines = ((p.working_set_lines as f64) * p.shared_frac.max(0.02)).ceil() as u64;
        // Private accesses of different cores never collide.
        let private_of = |t: &[MemAccess]| {
            t.iter()
                .map(|a| a.line)
                .filter(|&l| l >= shared_lines)
                .collect::<Vec<_>>()
        };
        let c0 = private_of(&traces[0]);
        let c1 = private_of(&traces[1]);
        assert!(!c0.is_empty() && !c1.is_empty());
        assert!(c0.iter().all(|l| !c1.contains(l)));
    }

    #[test]
    fn write_fraction_approximated() {
        let traces = gen(Benchmark::X264).generate(4_000);
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let writes: usize = traces.iter().flatten().filter(|a| a.write).count();
        let frac = writes as f64 / total as f64;
        let expect = Benchmark::X264.profile().write_frac;
        assert!(
            (frac - expect).abs() < 0.03,
            "write frac {frac} vs {expect}"
        );
    }

    #[test]
    fn gaps_track_intensity() {
        let hot = gen(Benchmark::Streamcluster).generate(4_000); // intensity 13
        let cold = gen(Benchmark::Swaptions).generate(4_000); // intensity 5
        let mean = |ts: &Vec<Vec<MemAccess>>| {
            let s: u64 = ts.iter().flatten().map(|a| a.gap).sum();
            s as f64 / ts.iter().map(|t| t.len()).sum::<usize>() as f64
        };
        assert!(
            mean(&hot) < mean(&cold),
            "hotter benchmark must have smaller gaps"
        );
    }

    #[test]
    fn addresses_stay_in_working_set() {
        for b in [Benchmark::Canneal, Benchmark::Vips] {
            let p = b.profile();
            let traces = TraceGenerator::new(p, 4, 3).generate(2_000);
            let limit = p.working_set_lines as u64 + 64; // walker wrap slack
            assert!(traces.iter().flatten().all(|a| a.line < limit));
        }
    }
}

disco_snapshot::snap_fields!(MemAccess { gap, line, write });
