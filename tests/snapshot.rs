//! Snapshot failure paths: every way a checkpoint can fail to restore —
//! truncation, corruption, version skew, feature-fingerprint skew, and
//! restoring into the wrong configuration — must surface as a typed
//! [`SimError`] with a readable message. No panics, no partial restores:
//! an error leaves nothing behind but the untouched input bytes.

use disco::core::{feature_fingerprint, CompressionPlacement, SimBuilder, SimError, System};
use disco::snapshot::{SnapshotHeader, Writer, FORMAT_VERSION, MAGIC};
use disco::workloads::Benchmark;

fn builder() -> SimBuilder {
    SimBuilder::new()
        .mesh(2, 2)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Swaptions)
        .trace_len(200)
        .seed(5)
}

/// A snapshot taken mid-run, with real state in every subsystem.
fn mid_run_snapshot() -> Vec<u8> {
    let mut sys = builder().build();
    assert!(!sys.step_until(400).expect("within budget"));
    sys.snapshot()
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let bytes = mid_run_snapshot();
    // Cut at the magic, inside the header, inside the builder, and just
    // short of the end — every prefix must fail with a typed error.
    for cut in [0, 4, 12, 40, bytes.len() / 2, bytes.len() - 1] {
        let err = match System::restore(&bytes[..cut]) {
            Err(e) => e,
            Ok(_) => panic!("prefix of {cut} bytes restored"),
        };
        assert!(
            matches!(
                err,
                SimError::SnapshotTruncated { .. } | SimError::SnapshotCorrupt { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
        assert!(!format!("{err}").is_empty());
    }
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.put(&(FORMAT_VERSION + 1));
    w.put(&feature_fingerprint());
    let err = match System::restore(&w.into_bytes()) {
        Err(e) => e,
        Ok(_) => panic!("future format version restored"),
    };
    let SimError::SnapshotVersionMismatch { found, expected } = err else {
        panic!("expected SnapshotVersionMismatch, got {err:?}");
    };
    assert_eq!(found, FORMAT_VERSION + 1);
    assert_eq!(expected, FORMAT_VERSION);
}

#[test]
fn feature_fingerprint_mismatch_is_a_typed_error() {
    // A fingerprint this build can never have (e.g. a `faults` snapshot
    // restored without the feature, or vice versa).
    let mut w = Writer::new();
    SnapshotHeader {
        version: FORMAT_VERSION,
        fingerprint: feature_fingerprint() ^ 0b11,
    }
    .write(&mut w);
    let err = match System::restore(&w.into_bytes()) {
        Err(e) => e,
        Ok(_) => panic!("foreign fingerprint restored"),
    };
    let SimError::SnapshotFeatureMismatch { found, expected } = err else {
        panic!("expected SnapshotFeatureMismatch, got {err:?}");
    };
    assert_eq!(found, expected ^ 0b11);
    assert!(
        format!("{err}").contains("feature"),
        "message names the cause"
    );
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = mid_run_snapshot();
    bytes[0] = b'X';
    let err = match System::restore(&bytes) {
        Err(e) => e,
        Ok(_) => panic!("bad magic restored"),
    };
    let SimError::SnapshotCorrupt { detail } = err else {
        panic!("expected SnapshotCorrupt, got {err:?}");
    };
    assert!(detail.contains("magic"), "detail was {detail:?}");
}

#[test]
fn wrong_topology_restore_is_a_typed_error() {
    use disco::noc::TopologyChoice;

    let bytes = mid_run_snapshot();
    // Same tile count, different interconnect: a job runner handing this
    // snapshot to a ring job must be told, not silently resumed.
    let ring = builder().topology(TopologyChoice::Ring);
    let err = match System::restore_with(&bytes, &ring) {
        Err(e) => e,
        Ok(_) => panic!("mesh snapshot restored into a ring job"),
    };
    let SimError::SnapshotConfigMismatch {
        field,
        snapshot,
        requested,
    } = err
    else {
        panic!("expected SnapshotConfigMismatch, got {err:?}");
    };
    assert_eq!(field, "topology");
    assert_ne!(snapshot, requested);

    // A different mesh size trips the same check.
    let bigger = builder().mesh(4, 4);
    assert!(matches!(
        System::restore_with(&bytes, &bigger),
        Err(SimError::SnapshotConfigMismatch { field: "cols", .. })
    ));

    // The matching configuration sails through.
    let resumed = System::restore_with(&bytes, &builder()).expect("matching config restores");
    resumed.run_to_completion().expect("resumed run drains");
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    let mut bytes = mid_run_snapshot();
    bytes.extend_from_slice(&[0xde, 0xad]);
    assert!(matches!(
        System::restore(&bytes),
        Err(SimError::SnapshotCorrupt { .. })
    ));
}

#[test]
fn garbage_streams_never_panic() {
    // Structurally hostile inputs: all fail in header or length
    // validation with a typed error.
    let hostile: &[&[u8]] = &[
        b"",
        b"DISCO",
        b"DISCOSNP",
        b"not a snapshot at all",
        &[0xff; 64],
    ];
    for bytes in hostile {
        assert!(
            System::restore(bytes).is_err(),
            "{} bytes of garbage restored",
            bytes.len()
        );
    }
}
