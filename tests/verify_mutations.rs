//! Mutation suite for the `disco-verify` analysis stack: inject a known
//! defect, assert the corresponding analysis fails on it. Each test is
//! the negative control for one acceptance claim of `cargo xtask
//! verify` — an analysis that cannot see its target defect proves
//! nothing by passing.

use std::collections::BTreeSet;

use disco_verify::ast;
use disco_verify::credits::{check_conservation, CreditLedger, LedgerOp};
use disco_verify::explorer::{explore, ExploreOptions};
use disco_verify::lints;
use disco_verify::model::{DirEngine, LiveDir, MAct, MDir, ProtocolModel};

// ---------------------------------------------------------------------------
// Credit conservation
// ---------------------------------------------------------------------------

/// A buffer drain that forgets to queue the credit return: credits leak
/// one per delivered flit until the link wedges. The symbolic proof must
/// refuse the operation set.
#[test]
fn dropped_credit_increment_is_caught() {
    let mut ledger = CreditLedger::live(4);
    let drain = ledger
        .ops
        .iter_mut()
        .find(|op| op.name == "drain")
        .expect("live ledger has a drain op");
    // Buffer slot freed, but the credit-return queue never hears of it.
    drain.delta = [0, -1, 0, 0];
    let report = check_conservation(&ledger);
    assert!(!report.clean(), "a leaking drain must fail conservation");
    let messages: String = report.violations[0].messages.join("\n");
    assert!(
        messages.contains("leak"),
        "violation should name the leak: {messages}"
    );
    assert!(
        !report.violations[0].schedule.is_empty(),
        "counterexample must carry a replayable op schedule"
    );
}

/// An unguarded credit return fires with nothing in the return queue:
/// the upstream counter counts a buffer slot twice (double-free). The
/// proof must catch the missing guard.
#[test]
fn unguarded_credit_return_is_caught() {
    let mut ledger = CreditLedger::live(4);
    ledger.ops.push(LedgerOp {
        name: "spurious-return".to_string(),
        guard: [0, 0, 0, 0],
        delta: [1, 0, -1, 0],
    });
    let report = check_conservation(&ledger);
    assert!(
        !report.clean(),
        "an unguarded return must fail conservation"
    );
    let messages: String = report
        .violations
        .iter()
        .flat_map(|v| v.messages.iter())
        .cloned()
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        messages.contains("double-free") || messages.contains("negative"),
        "violation should name the double-free or the negative component: {messages}"
    );
}

// ---------------------------------------------------------------------------
// Protocol model checking
// ---------------------------------------------------------------------------

/// A directory that grants write ownership without invalidating the
/// previous sharers — the classic illegal MOESI edge (S → M with stale
/// copies left behind). The model checker must produce a replayable
/// schedule ending in a copy-accounting or staleness violation.
struct NoInvalOnWrite(LiveDir);

impl DirEngine for NoInvalOnWrite {
    fn read(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>) {
        self.0.read(dir, core)
    }
    fn write(&self, dir: &MDir, core: u8) -> (MDir, Vec<MAct>) {
        let (next, acts) = self.0.write(dir, core);
        // Drop every invalidation the live directory would have sent.
        let acts = acts
            .into_iter()
            .filter(|a| !matches!(a, MAct::Inval { .. }))
            .collect();
        (next, acts)
    }
    fn writeback(&self, dir: &MDir, core: u8) -> MDir {
        self.0.writeback(dir, core)
    }
    fn recall(&self, dir: &MDir) -> (MDir, Vec<MAct>) {
        self.0.recall(dir)
    }
}

#[test]
fn illegal_moesi_edge_is_caught_with_schedule() {
    let model = ProtocolModel::default_config(NoInvalOnWrite(LiveDir::default()));
    let report = explore(
        &model,
        &ExploreOptions {
            max_depth: 16,
            max_states: 500_000,
            workers: 2,
            max_violations: 1,
        },
    );
    assert!(
        !report.clean(),
        "suppressed invalidations must violate an invariant"
    );
    let v = &report.violations[0];
    assert!(
        !v.schedule.is_empty(),
        "counterexample must be a replayable message schedule"
    );
    let rendered = report.render("model");
    assert!(
        rendered.contains("step   1:"),
        "render() lists the schedule steps: {rendered}"
    );
}

// ---------------------------------------------------------------------------
// Commit-confinement lint: the helper-method blind spot
// ---------------------------------------------------------------------------

/// The `&mut self` methods of a miniature `Router`, extracted the same
/// way the real lint extracts them from `crates/noc/src/router.rs`.
fn fixture_mut_methods() -> BTreeSet<String> {
    let router_src = "
        impl Router {
            pub fn accept(&mut self, port: usize, vc: usize, flit: Flit) {}
            pub fn return_credit(&mut self, dir: Direction, vc: usize) {}
            pub fn peek(&self, port: usize) -> Option<&Flit> { None }
        }
    ";
    ast::router_mut_methods(router_src).expect("fixture parses")
}

const ROUTER_FIELDS: &[&str] = &["inputs", "out_alloc", "credits", "rr_sa", "sa_losers"];

/// A compute-phase helper that smuggles a router mutation through a
/// method call instead of a spelled-out field assignment. The old
/// string scanner only matches `.field = ...` patterns, so this defect
/// sailed through it; the AST lint resolves the callee against the
/// extracted `&mut self` method set and flags it.
#[test]
fn helper_method_mutation_caught_by_ast_missed_by_string_scan() {
    let defect = "
        fn sneak(routers: &mut [Router], d: Hop, port: usize, vc: usize, flit: Flit) {
            routers[d.next].accept(port, vc, flit);
        }
    ";
    // Regression baseline: the string scanner misses it (this documented
    // the blind spot before the AST port; keep proving it).
    assert_eq!(
        lints::scan_confinement(defect),
        Vec::new(),
        "the string scanner cannot see helper-method mutations"
    );
    // The AST lint catches it.
    let findings = ast::scan_confinement(
        defect,
        ROUTER_FIELDS,
        &fixture_mut_methods(),
        ast::ConfinementRules {
            direct_writes: true,
            method_calls: true,
        },
    )
    .expect("fixture parses");
    assert_eq!(findings.len(), 1, "exactly the accept() call: {findings:?}");
    assert!(
        findings[0].1.contains("accept"),
        "finding names the mutating method: {}",
        findings[0].1
    );
}

/// A router-field write placed *after* a `#[cfg(test)]` module. The old
/// scanner stops at the first `#[cfg(test)]` line and never reads the
/// rest of the file; the AST walker skips only the test item itself.
#[test]
fn mutation_after_test_module_caught_by_ast_missed_by_string_scan() {
    let defect = "
        fn fine(router: &Router) -> usize { router.credits[0][1] }

        #[cfg(test)]
        mod tests {
            fn t() {}
        }

        fn late(router: &mut Router) {
            router.credits[0][1] += 1;
        }
    ";
    assert_eq!(
        lints::scan_confinement(defect),
        Vec::new(),
        "the string scanner goes blind at the first #[cfg(test)]"
    );
    let findings = ast::scan_confinement(
        defect,
        ROUTER_FIELDS,
        &fixture_mut_methods(),
        ast::ConfinementRules {
            direct_writes: true,
            method_calls: false,
        },
    )
    .expect("fixture parses");
    assert_eq!(
        findings.len(),
        1,
        "exactly the post-test-module write: {findings:?}"
    );
}

/// A wall-clock read hidden behind `#[cfg(feature = ...)]` after a test
/// module: invisible to the line scanner, visible to the AST walk.
#[test]
fn cfg_hidden_wallclock_caught_by_ast_missed_by_string_scan() {
    let defect = "
        fn ok() {}

        #[cfg(test)]
        mod tests {}

        #[cfg(feature = \"profiling\")]
        fn stamp() -> std::time::Instant {
            std::time::Instant::now()
        }
    ";
    assert_eq!(
        lints::scan_wallclock(defect),
        Vec::new(),
        "the string scanner goes blind at the first #[cfg(test)]"
    );
    let findings = ast::scan_wallclock(defect).expect("fixture parses");
    assert!(
        !findings.is_empty(),
        "the AST scan sees through cfg-gated items"
    );
}

// ---------------------------------------------------------------------------
// Compute-phase purity
// ---------------------------------------------------------------------------

/// A compute phase whose kernel takes `&mut Router` — the exact
/// signature change that would let per-cycle code mutate shared state
/// and break shard determinism. The purity check pins the shared
/// reference.
#[test]
fn compute_phase_mutable_signature_is_caught() {
    let defect = "
        pub fn compute_router(router: &mut Router, cycle: u64) -> RouterOutcome {
            RouterOutcome::default()
        }
    ";
    let findings = ast::scan_compute_purity(defect, true).expect("fixture parses");
    assert!(
        !findings.is_empty(),
        "&mut Router in the compute kernel must be flagged"
    );
}

/// Interior mutability smuggled into the compute phase: a `RefCell`
/// write compiles against `&Router` but still mutates during the
/// parallel phase.
#[test]
fn compute_phase_interior_mutability_is_caught() {
    let defect = "
        pub fn compute_router(router: &Router, cycle: u64) -> RouterOutcome {
            let staged: RefCell<Vec<Flit>> = RefCell::new(Vec::new());
            staged.borrow_mut().push(make_flit());
            RouterOutcome::default()
        }
    ";
    let findings = ast::scan_compute_purity(defect, true).expect("fixture parses");
    assert!(
        findings.iter().any(|f| f.1.contains("RefCell")),
        "RefCell in the compute phase must be flagged: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Design-space axis coverage in the frontier JSON (rule 8)
// ---------------------------------------------------------------------------

/// A new axis added to `DesignSpace` without teaching the driver's JSON
/// render about it — the exploration would silently sweep a dimension
/// the output schema never names. The axis lint must flag the missing
/// key, and name it.
#[test]
fn unrendered_design_space_axis_is_caught() {
    let space = "
        pub struct DesignSpace {
            pub cols: usize,
            pub gammas: Vec<f64>,
        }
    ";
    // The driver as committed: both keys rendered.
    let clean = r#"
        out.push_str("{\"cols\": 1, \"gammas\": [0.5]}");
    "#;
    assert_eq!(lints::scan_pareto_axes(space, clean), Vec::new());

    // The mutation: the render loses (or never gains) the gammas key.
    let mutated = r#"
        out.push_str("{\"cols\": 1}");
    "#;
    let findings = lints::scan_pareto_axes(space, mutated);
    assert!(
        findings.iter().any(|(_, m)| m.contains("gammas")),
        "the unrendered axis must be flagged by name: {findings:?}"
    );
}

/// The degenerate mutation: `DesignSpace` renamed or removed entirely.
/// An empty field list must fail loudly — a lint that silently matches
/// nothing proves nothing by passing.
#[test]
fn missing_design_space_struct_is_caught() {
    let findings = lints::scan_pareto_axes("pub struct Other {}", "anything");
    assert!(
        findings.iter().any(|(_, m)| m.contains("DesignSpace")),
        "a vanished DesignSpace must be flagged: {findings:?}"
    );
}

/// The live repository must stay clean under rule 8 end-to-end: every
/// axis the committed `DesignSpace` declares is named in the committed
/// driver's frontier JSON.
#[test]
fn live_design_space_axes_are_all_rendered() {
    let root = lints::repo_root();
    let violations = lints::check_pareto_axes(&root).expect("sources readable");
    assert_eq!(violations, Vec::new());
}

// ---------------------------------------------------------------------------
// Snapshot manifest exhaustiveness (rule 6)
// ---------------------------------------------------------------------------

/// A field added to a snapshotted struct without updating the manifest
/// — the exact mutation that ships checkpoints silently missing state.
/// The manifest diff must flag the undeclared field by name.
#[test]
fn unserialized_snapshot_field_is_caught() {
    let manifest = "\
        struct crates/core/src/system.rs System\n\
        net state\n\
        tiles state\n";
    let entries = lints::parse_snapshot_manifest(manifest).expect("manifest parses");
    assert_eq!(entries.len(), 1);

    // The struct as committed: the manifest covers it exactly.
    let clean = "
        pub struct System {
            net: Network,
            tiles: Vec<Tile>,
        }
    ";
    assert_eq!(lints::scan_snapshot_struct(&entries[0], clean), Vec::new());

    // The mutation: a later PR adds a retry counter, private and
    // cfg-gated — exactly the kind of field a snapshot audit misses —
    // and forgets both the manifest and the serializer.
    let mutated = "
        pub struct System {
            net: Network,
            tiles: Vec<Tile>,
            #[cfg(feature = \"faults\")]
            retry_backoff: u64,
        }
    ";
    let findings = lints::scan_snapshot_struct(&entries[0], mutated);
    assert!(
        findings.iter().any(|(_, m)| m.contains("retry_backoff")),
        "the undeclared field must be flagged by name: {findings:?}"
    );
}

/// The reverse mutation: a field is deleted from the struct but its
/// manifest entry lingers. Stale entries must be flagged, or the
/// manifest rots into documentation nobody can trust.
#[test]
fn stale_snapshot_manifest_entry_is_caught() {
    let manifest = "\
        struct crates/core/src/system.rs System\n\
        net state\n\
        mcs derived\n";
    let entries = lints::parse_snapshot_manifest(manifest).expect("manifest parses");
    let shrunk = "
        pub struct System {
            net: Network,
        }
    ";
    let findings = lints::scan_snapshot_struct(&entries[0], shrunk);
    assert!(
        findings
            .iter()
            .any(|(_, m)| m.contains("mcs") && m.contains("stale")),
        "the stale entry must be flagged: {findings:?}"
    );
}

/// Manifest syntax errors (an unknown disposition, a field before any
/// struct header) must fail parsing loudly, not silently skip lines —
/// a skipped line is an unchecked field.
#[test]
fn malformed_snapshot_manifest_is_rejected() {
    let bad_disposition = "struct a/b.rs S\nnet sometimes\n";
    assert!(lints::parse_snapshot_manifest(bad_disposition)
        .unwrap_err()
        .contains("state|derived"));
    let orphan_field = "net state\n";
    assert!(lints::parse_snapshot_manifest(orphan_field)
        .unwrap_err()
        .contains("struct"));
}

/// The live repository must stay clean under rule 6 end-to-end: every
/// struct named in the committed manifest exists and matches
/// field-for-field.
#[test]
fn live_snapshot_manifest_is_exhaustive() {
    let root = lints::repo_root();
    let violations = lints::check_snapshot_manifest(&root).expect("manifest readable");
    assert_eq!(violations, Vec::new());
}
