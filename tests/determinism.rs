//! Determinism matrix: the phase-split cycle kernel must produce
//! byte-identical stats regardless of how many shards the compute phase
//! runs on. Serial builds ignore `compute_shards`, so there the matrix
//! degenerates to a (cheap) self-comparison; under `--features parallel`
//! it pins the real property — commit order, not thread schedule,
//! decides every outcome. CI runs this file under all four feature
//! combinations (default, `parallel`, `validate`, `parallel,validate`).

use disco::core::{CompressionPlacement, SimBuilder};
use disco::noc::{NocConfig, RoutingAlgorithm, TopologyChoice};
use disco::workloads::Benchmark;

/// Full stats report for one matrix point at a given shard count.
fn stats_with_shards(
    seed: u64,
    placement: CompressionPlacement,
    routing: RoutingAlgorithm,
    shards: usize,
) -> String {
    let noc = NocConfig {
        routing,
        compute_shards: shards,
        ..NocConfig::default()
    };
    let report = SimBuilder::new()
        .mesh(4, 4)
        .placement(placement)
        .benchmark(Benchmark::Dedup)
        .trace_len(300)
        .seed(seed)
        .noc(noc)
        .run()
        .expect("matrix run drains");
    let mut buf = Vec::new();
    report.write_stats(&mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("stats are utf8")
}

#[test]
fn shard_count_never_changes_stats() {
    for seed in [1u64, 2, 3] {
        for placement in [CompressionPlacement::Baseline, CompressionPlacement::Disco] {
            for routing in [RoutingAlgorithm::Xy, RoutingAlgorithm::WestFirst] {
                let serial = stats_with_shards(seed, placement, routing, 1);
                let sharded = stats_with_shards(seed, placement, routing, 4);
                assert_eq!(
                    serial, sharded,
                    "seed {seed}, {placement}, {routing:?}: \
                     4-shard stats diverged from 1-shard"
                );
            }
        }
    }
}

/// The wrapped topologies join the matrix: ring and torus runs (which
/// exercise the dateline VC split and, on the ring, radix-3 port
/// tables) must be byte-identical at any shard count too. 3 seeds ×
/// {Baseline, DISCO} × shards {1, 4, 16} per topology.
#[test]
fn ring_and_torus_are_shard_invariant() {
    let stats =
        |topology: TopologyChoice, seed: u64, placement: CompressionPlacement, shards: usize| {
            let noc = NocConfig {
                compute_shards: shards,
                ..NocConfig::default()
            };
            let report = SimBuilder::new()
                .mesh(4, 4)
                .topology(topology)
                .placement(placement)
                .benchmark(Benchmark::Dedup)
                .trace_len(300)
                .seed(seed)
                .noc(noc)
                .run()
                .expect("wrapped-topology matrix run drains");
            let mut buf = Vec::new();
            report.write_stats(&mut buf).expect("in-memory write");
            String::from_utf8(buf).expect("stats are utf8")
        };
    for topology in [TopologyChoice::Ring, TopologyChoice::Torus] {
        for seed in [1u64, 2, 3] {
            for placement in [CompressionPlacement::Baseline, CompressionPlacement::Disco] {
                let serial = stats(topology, seed, placement, 1);
                for shards in [4, 16] {
                    assert_eq!(
                        serial,
                        stats(topology, seed, placement, shards),
                        "{topology}, seed {seed}, {placement}: \
                         {shards}-shard stats diverged from serial"
                    );
                }
            }
        }
    }
}

/// One router per shard is the most adversarial decomposition: every
/// cross-router effect crosses a shard boundary.
#[test]
fn one_router_per_shard_matches_serial() {
    let serial = stats_with_shards(7, CompressionPlacement::Disco, RoutingAlgorithm::Xy, 1);
    let extreme = stats_with_shards(7, CompressionPlacement::Disco, RoutingAlgorithm::Xy, 16);
    assert_eq!(serial, extreme);
}

/// A sharded run must also satisfy the runtime invariant checker: when
/// the `validate` feature is on (CI's `parallel,validate` job), this run
/// walks credit conservation and VC-state legality every cycle.
#[test]
fn sharded_run_passes_validation() {
    let stats = stats_with_shards(11, CompressionPlacement::Disco, RoutingAlgorithm::Xy, 4);
    assert!(stats.contains("noc.routing_violations = 0"));
}

/// The 16x16 leg: at 256 routers the parallel build actually engages
/// the persistent worker pool (auto-sharding refuses to split meshes
/// smaller than 16 routers per shard), so this is the configuration
/// where a commit-order bug or a pool race would first become visible.
/// 3 seeds × {Baseline, DISCO} × shards {1, 4, 16}, byte-compared.
#[test]
fn large_mesh_is_shard_invariant() {
    let stats_16x16 = |seed: u64, placement: CompressionPlacement, shards: usize| {
        let noc = NocConfig {
            compute_shards: shards,
            ..NocConfig::default()
        };
        let report = SimBuilder::new()
            .mesh(16, 16)
            .placement(placement)
            .benchmark(Benchmark::Dedup)
            .trace_len(200)
            .seed(seed)
            .noc(noc)
            .run()
            .expect("16x16 matrix run drains");
        let mut buf = Vec::new();
        report.write_stats(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("stats are utf8")
    };
    // Serial builds ignore `compute_shards`, so each comparison there
    // is a self-check; one matrix point keeps the default-feature test
    // tier fast. The parallel build — where the pool actually runs —
    // covers the full 3-seed × 2-placement matrix (CI's `parallel*`
    // legs).
    let seeds: &[u64] = if cfg!(feature = "parallel") {
        &[1, 2, 3]
    } else {
        &[1]
    };
    let placements: &[CompressionPlacement] = if cfg!(feature = "parallel") {
        &[CompressionPlacement::Baseline, CompressionPlacement::Disco]
    } else {
        &[CompressionPlacement::Disco]
    };
    for &seed in seeds {
        for &placement in placements {
            let serial = stats_16x16(seed, placement, 1);
            for shards in [4, 16] {
                assert_eq!(
                    serial,
                    stats_16x16(seed, placement, shards),
                    "seed {seed}, {placement}: 16x16 diverged at {shards} shards"
                );
            }
        }
    }
}

/// Dropping to 1 shard must route through the serial compute path with
/// no worker pool spun up — a single-shard "parallel" run that parked a
/// thread anyway would pay rendezvous cost for nothing. Conversely, a
/// parallel build asked for N shards must hold N-1 parked workers
/// (index 0 runs on the caller's thread).
#[test]
fn single_shard_spins_up_no_pool() {
    use disco::noc::{Mesh, Network};

    let noc = NocConfig {
        compute_shards: 1,
        ..NocConfig::default()
    };
    let net = Network::new(Mesh::new(4, 4), noc);
    assert_eq!(net.compute_shards(), 1);
    assert_eq!(
        net.pool_workers(),
        0,
        "1 shard must not spin up a worker pool"
    );

    #[cfg(feature = "parallel")]
    {
        let noc = NocConfig {
            compute_shards: 4,
            ..NocConfig::default()
        };
        let net = Network::new(Mesh::new(4, 4), noc);
        assert_eq!(net.compute_shards(), 4);
        assert_eq!(
            net.pool_workers(),
            3,
            "4 shards must hold exactly 3 parked workers"
        );
    }
}

/// Fault injection must not weaken the determinism contract: the fault
/// schedule is a pure function of `(seed, kind, cycle, site)` and all
/// fault bookkeeping runs in the node-ordered serial passes, so the
/// whole stats file — FaultStats included — must be byte-identical at
/// any shard count, at any fault rate. CI runs this leg under `faults`
/// and `parallel,faults,trace`.
#[cfg(feature = "faults")]
mod faults_matrix {
    use super::*;
    use disco::faults::FaultPlan;

    /// Full stats report for one faulty matrix point.
    fn faulty_stats(seed: u64, rate: f64, shards: usize) -> String {
        let noc = NocConfig {
            compute_shards: shards,
            ..NocConfig::default()
        };
        let report = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Dedup)
            .trace_len(300)
            .seed(seed)
            .noc(noc)
            .faults(FaultPlan::uniform(seed ^ 0xfa17, rate))
            .run()
            .expect("faulty matrix run drains");
        let mut buf = Vec::new();
        report.write_stats(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("stats are utf8")
    }

    #[test]
    fn fault_stats_are_shard_invariant() {
        for seed in [1u64, 2, 3] {
            for rate in [0.0, 1e-4] {
                let serial = faulty_stats(seed, rate, 1);
                for shards in [4, 16] {
                    assert_eq!(
                        serial,
                        faulty_stats(seed, rate, shards),
                        "seed {seed}, rate {rate}: {shards}-shard stats diverged"
                    );
                }
            }
        }
    }

    /// A rate-zero plan is indistinguishable from never arming one: the
    /// context is discarded at install time, so timing, stats, and the
    /// stats file bytes all match the fault-free build.
    #[test]
    fn rate_zero_matches_fault_free_run() {
        let clean = stats_with_shards(2, CompressionPlacement::Disco, RoutingAlgorithm::Xy, 1);
        let armed = faulty_stats(2, 0.0, 1);
        assert_eq!(clean, armed, "inactive plan must be a no-op");
    }

    /// JSONL byte-identity extends to faulty runs (fault events, eaten
    /// ejections, and retransmissions are all committed in node order).
    #[cfg(feature = "trace")]
    #[test]
    fn faulty_trace_jsonl_is_shard_invariant() {
        let export = |shards: usize| {
            let noc = NocConfig {
                compute_shards: shards,
                ..NocConfig::default()
            };
            let report = SimBuilder::new()
                .mesh(4, 4)
                .placement(CompressionPlacement::Disco)
                .benchmark(Benchmark::Dedup)
                .trace_len(300)
                .seed(9)
                .noc(noc)
                .faults(FaultPlan::uniform(0xfa17, 1e-4))
                .retain_trace_records(true)
                .run()
                .expect("faulty matrix run drains");
            let t = report.trace.expect("capture requested");
            disco::trace::export::jsonl_string(&t.records)
        };
        let serial = export(1);
        assert!(!serial.is_empty());
        for shards in [4, 16] {
            assert_eq!(
                serial,
                export(shards),
                "faulty JSONL export diverged at {shards} shards"
            );
        }
    }
}

/// The trace is part of the determinism contract too: every event is
/// committed in node order and stamped with the simulated cycle (never
/// wall-clock), so the exported JSONL must be byte-identical at any
/// shard count. CI runs this under `parallel,trace`; without `parallel`
/// the shard request is ignored and the comparison is a self-check.
#[cfg(feature = "trace")]
#[test]
fn trace_jsonl_is_shard_invariant() {
    let export = |shards: usize| {
        let noc = NocConfig {
            compute_shards: shards,
            ..NocConfig::default()
        };
        let report = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Dedup)
            .trace_len(300)
            .seed(9)
            .noc(noc)
            .retain_trace_records(true)
            .run()
            .expect("matrix run drains");
        let t = report.trace.expect("capture requested");
        assert!(t.provenance.exact, "{shards} shards: decomposition exact");
        disco::trace::export::jsonl_string(&t.records)
    };
    let serial = export(1);
    assert!(!serial.is_empty());
    for shards in [4, 16] {
        assert_eq!(
            serial,
            export(shards),
            "JSONL export diverged at {shards} shards"
        );
    }
}

/// The checkpoint leg of the contract: run-to-cycle-N → snapshot →
/// restore → run-to-end must be byte-identical to the unbroken run at
/// every shard count — the stats file, and (feature-gated) the trace
/// JSONL export and the fault ledger riding in the stats file. CI runs
/// this under default and `parallel,faults,trace` builds.
mod snapshot_roundtrip {
    use super::*;
    use disco::core::{SimReport, System};

    /// Cycle at which the interrupted run pauses and checkpoints.
    const SNAPSHOT_AT: u64 = 300;

    fn matrix_builder(seed: u64, placement: CompressionPlacement, shards: usize) -> SimBuilder {
        let noc = NocConfig {
            compute_shards: shards,
            ..NocConfig::default()
        };
        let builder = SimBuilder::new()
            .mesh(4, 4)
            .placement(placement)
            .benchmark(Benchmark::Dedup)
            .trace_len(300)
            .seed(seed)
            .noc(noc);
        #[cfg(feature = "faults")]
        let builder = builder.faults(disco::faults::FaultPlan::uniform(seed ^ 0xfa17, 1e-4));
        #[cfg(feature = "trace")]
        let builder = builder.retain_trace_records(true);
        builder
    }

    /// Every byte-comparable artifact of a finished run: the stats file
    /// (which carries the fault ledger under `faults`) and the exported
    /// trace JSONL under `trace`.
    fn artifacts(report: &SimReport) -> String {
        let mut buf = Vec::new();
        report.write_stats(&mut buf).expect("in-memory write");
        #[allow(unused_mut)]
        let mut out = String::from_utf8(buf).expect("stats are utf8");
        #[cfg(feature = "trace")]
        {
            let t = report.trace.as_ref().expect("capture requested");
            out.push_str(&disco::trace::export::jsonl_string(&t.records));
        }
        out
    }

    #[test]
    fn snapshot_resume_is_byte_identical() {
        for seed in [1u64, 2, 3] {
            for placement in [CompressionPlacement::Baseline, CompressionPlacement::Disco] {
                for shards in [1usize, 4, 16] {
                    let builder = matrix_builder(seed, placement, shards);
                    let unbroken = artifacts(&builder.clone().run().expect("unbroken run drains"));
                    let mut sys = builder.build();
                    assert!(
                        !sys.step_until(SNAPSHOT_AT).expect("within budget"),
                        "seed {seed}, {placement}, {shards} shards: \
                         run finished before cycle {SNAPSHOT_AT}"
                    );
                    let bytes = sys.snapshot();
                    drop(sys);
                    let resumed = System::restore(&bytes)
                        .expect("snapshot restores")
                        .run_to_completion()
                        .expect("resumed run drains");
                    assert_eq!(
                        unbroken,
                        artifacts(&resumed),
                        "seed {seed}, {placement}, {shards} shards: \
                         resumed run diverged from the unbroken run"
                    );
                }
            }
        }
    }
}

/// The model checker's report — state counts, depth, and every
/// counterexample schedule — must be byte-identical run to run and at
/// any worklist worker count, or `cargo xtask verify --json` artifacts
/// could not be diffed across CI runs. The explorer guarantees this by
/// merging per-chunk frontier results in chunk order; this pins it on a
/// configuration small enough for the test tier.
#[test]
fn model_checker_report_is_worker_invariant() {
    use disco_verify::explorer::{explore, ExploreOptions};
    use disco_verify::model::{LiveDir, ProtocolModel, ScriptOp};

    let run = |workers: usize| {
        let model = ProtocolModel::new(
            LiveDir::default(),
            vec![
                vec![ScriptOp::Write, ScriptOp::Read],
                vec![ScriptOp::Read, ScriptOp::Write],
            ],
        );
        let report = explore(
            &model,
            &ExploreOptions {
                max_depth: 32,
                max_states: 500_000,
                workers,
                max_violations: 8,
            },
        );
        (report.states, report.transitions, report.render("model"))
    };
    let (states, transitions, baseline) = run(1);
    assert!(states > 1_000, "two-writer model explores a real space");
    for workers in [2, 4] {
        let (s, t, render) = run(workers);
        assert_eq!(states, s, "state count diverged at {workers} workers");
        assert_eq!(
            transitions, t,
            "transition count diverged at {workers} workers"
        );
        assert_eq!(
            baseline, render,
            "rendered report diverged at {workers} workers"
        );
    }
}
