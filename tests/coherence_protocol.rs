//! Protocol-level integration tests driven by hand-written traces: the
//! MOESI directory must produce the expected message patterns and the
//! system must stay coherent under adversarial sharing.

use disco::core::{CompressionPlacement, SimBuilder, SimReport};
use disco::workloads::{Benchmark, MemAccess};

/// Builds a trace where `core`s alternately touch one shared line.
fn ping_pong(cores: usize, rounds: usize, write: bool) -> Vec<Vec<MemAccess>> {
    let mut traces = vec![Vec::new(); cores];
    for r in 0..rounds {
        let core = r % cores;
        // First access offsets the cores so they truly alternate;
        // afterwards each core repeats every `cores * 400` cycles.
        let gap = if traces[core].is_empty() {
            (core as u64 + 1) * 400
        } else {
            cores as u64 * 400
        };
        traces[core].push(MemAccess {
            gap,
            line: 0x1000,
            write,
        });
    }
    traces
}

fn run(traces: Vec<Vec<MemAccess>>) -> SimReport {
    SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Baseline)
        .benchmark(Benchmark::Swaptions) // provides the value model only
        .traces(traces)
        .seed(9)
        .run()
        .expect("drains")
}

#[test]
fn write_ping_pong_generates_ownership_transfers() {
    // Two cores alternately writing one line: every write after the first
    // must steal ownership (forward + invalidate).
    let r = run(ping_pong(2, 20, true));
    assert!(
        r.directory.write_requests >= 19,
        "every write misses L1 after the invalidation: {:?}",
        r.directory
    );
    assert!(
        r.directory.invalidations >= 15,
        "ownership must bounce between the writers: {:?}",
        r.directory
    );
    assert!(
        r.l1.invalidations >= 15,
        "L1 copies must be recalled: {:?}",
        r.l1
    );
}

#[test]
fn read_sharing_is_invalidation_free() {
    // Many cores reading one line never invalidate each other.
    let r = run(ping_pong(8, 64, false));
    assert_eq!(r.directory.invalidations, 0, "{:?}", r.directory);
    assert!(
        r.directory.bank_reads >= 8,
        "each core misses once: {:?}",
        r.directory
    );
}

#[test]
fn reader_after_writer_gets_forwarded_data() {
    // Core 0 writes, core 1 then reads: the directory must forward to the
    // dirty owner (cache-to-cache transfer) instead of serving stale bank
    // data.
    let mut traces = vec![Vec::new(); 2];
    traces[0].push(MemAccess {
        gap: 10,
        line: 0x2000,
        write: true,
    });
    traces[1].push(MemAccess {
        gap: 600,
        line: 0x2000,
        write: false,
    });
    let r = run(traces);
    assert!(
        r.directory.owner_forwards >= 1,
        "read after remote write must forward to the owner: {:?}",
        r.directory
    );
}

#[test]
fn response_class_dominates_traffic_for_data_patterns() {
    use disco::noc::PacketClass;
    let r = run(ping_pong(2, 30, true));
    let resp = r.network.delivered_by_class[disco::noc::stats::class_index(PacketClass::Response)];
    let coh = r.network.delivered_by_class[disco::noc::stats::class_index(PacketClass::Coherence)];
    assert!(
        resp > 0 && coh > 0,
        "both classes must appear: {:?}",
        r.network
    );
    // §3.3-C: response packets carry the payload bytes, so they dominate
    // flit traffic even when coherence packets are frequent.
    assert!(
        r.network.avg_latency_of(PacketClass::Response)
            >= r.network.avg_latency_of(PacketClass::Coherence) * 0.5,
        "sanity on per-class latency accounting"
    );
}

#[test]
fn next_line_prefetcher_halves_strided_demand_misses() {
    // A pure sequential walk with generous gaps: every miss on line L
    // prefetches L+1, so demand misses alternate (miss, hit, miss, ...).
    let walk: Vec<MemAccess> = (0..400u64)
        .map(|i| MemAccess {
            gap: 200,
            line: 0x4000 + i,
            write: false,
        })
        .collect();
    let base = SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Baseline)
        .benchmark(Benchmark::Vips)
        .traces(vec![walk.clone()])
        .seed(2)
        .run()
        .expect("drains");
    let pf = SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Baseline)
        .benchmark(Benchmark::Vips)
        .traces(vec![walk])
        .seed(2)
        .prefetch_next_line(true)
        .run()
        .expect("drains");
    assert!(
        base.demand_misses >= 395,
        "walk is all misses: {}",
        base.demand_misses
    );
    assert!(
        pf.demand_misses * 2 <= base.demand_misses + 20,
        "prefetching must roughly halve demand misses: {} vs {}",
        pf.demand_misses,
        base.demand_misses
    );
    assert!(pf.l1.hits > base.l1.hits, "prefetched lines must hit");
}
