//! End-to-end data-integrity tests for in-network de/compression: no
//! matter how often the DISCO layer rewrites packets in flight, every
//! delivered payload must decode to exactly the bytes that were sent.

use disco::compress::{scheme::Compressor, CacheLine, Codec};
use disco::core::protocol::{Msg, Op};
use disco::core::{DiscoLayer, DiscoParams};
use disco::noc::{Mesh, Network, NocConfig, NodeId, PacketClass, Payload};
use disco::workloads::{Benchmark, ValueModel};
use proptest::prelude::*;

fn eager() -> DiscoParams {
    DiscoParams {
        cc_threshold: -10.0,
        cd_threshold: -10.0,
        beta: 0.1,
        ..DiscoParams::default()
    }
}

/// Drives random data traffic with an over-eager DISCO layer (maximum
/// in-network rewriting) and checks byte-exact delivery.
fn drive_and_check(lines: &[CacheLine], ops: &[Op]) {
    let mesh = Mesh::new(3, 3);
    let mut net = Network::new(mesh, NocConfig::default());
    let mut layer = DiscoLayer::new(eager(), Codec::delta(), mesh.nodes());
    let codec = Codec::delta();
    let mut expected = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let src = i % 9;
        let dst = (i * 5 + 3) % 9;
        if src == dst {
            continue;
        }
        let op = ops[i % ops.len()];
        let tag = Msg::new(op, dst.min(255), i as u64).encode();
        net.send(
            NodeId(src),
            NodeId(dst),
            PacketClass::Response,
            Payload::Raw(*line),
            true,
            tag,
        );
        expected.push((dst, i as u64, *line));
    }
    let mut delivered = 0;
    while delivered < expected.len() {
        net.tick();
        layer.tick(&mut net);
        for n in 0..9 {
            for pkt in net.take_delivered(NodeId(n)) {
                let msg = Msg::decode(pkt.tag);
                let (dst, _line_id, original) = expected
                    .iter()
                    .find(|(d, l, _)| *d == n && *l == msg.line)
                    .copied()
                    .expect("delivered packet was sent");
                assert_eq!(dst, n);
                let got = match &pkt.payload {
                    Payload::Raw(l) => *l,
                    Payload::Compressed(c) => codec.decompress(c).expect("valid"),
                    Payload::None => panic!("data packet lost its payload"),
                };
                assert_eq!(got, original, "payload corrupted in flight");
                delivered += 1;
            }
        }
        assert!(net.now() < 500_000, "traffic must drain");
    }
}

#[test]
fn eager_disco_preserves_workload_data() {
    for bench in [Benchmark::X264, Benchmark::Canneal, Benchmark::Dedup] {
        let model = ValueModel::new(bench.profile().value, 3);
        let lines: Vec<CacheLine> = (0..120).map(|a| model.line(a, 0)).collect();
        drive_and_check(&lines, &[Op::Writeback, Op::DataToCore, Op::MemFill]);
    }
}

#[test]
fn stalled_compressed_packet_is_decompressed_in_network() {
    // A compressed DataToCore packet stalled alone in a roomy VC (its
    // output port has no credits) is the §3.2 decompression case: the
    // engine expands it in place during the stall and the destination
    // receives raw flits without paying ejection-side latency.
    let mesh = Mesh::new(2, 1);
    let mut net = Network::new(mesh, NocConfig::default());
    let mut layer = DiscoLayer::new(eager(), Codec::delta(), mesh.nodes());
    let codec = Codec::delta();
    let line = CacheLine::from_u64_words([1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007]);
    let enc = codec.compress(&line);
    let tag = Msg::new(Op::DataToCore, 1, 7).encode();
    net.send(
        NodeId(0),
        NodeId(1),
        PacketClass::Response,
        Payload::Compressed(enc),
        true,
        tag,
    );
    assert!(net
        .router_mut(NodeId(0))
        .try_take_credits(disco::noc::topology::EAST, 1, 8));
    for _ in 0..60 {
        net.tick();
        layer.tick(&mut net);
    }
    assert_eq!(layer.stats().decompressions, 1, "{:?}", layer.stats());
    for _ in 0..8 {
        net.router_mut(NodeId(0))
            .return_credit(disco::noc::topology::EAST, 1);
    }
    let pkt = loop {
        net.tick();
        layer.tick(&mut net);
        if let Some(p) = net.take_delivered(NodeId(1)).pop() {
            break p;
        }
        assert!(net.now() < 2_000);
    };
    match &pkt.payload {
        Payload::Raw(l) => assert_eq!(*l, line),
        other => panic!("expected raw delivery, got {other:?}"),
    }
    assert_eq!(
        pkt.size_flits(),
        8,
        "decompressed packet carries all 8 flits"
    );
}

#[test]
fn dense_hotspot_preserves_compressed_payloads() {
    // Under a dense hotspot there is usually no room to expand in place
    // (growth stalls are expected); whatever form packets arrive in must
    // still decode exactly.
    let mesh = Mesh::new(3, 3);
    let mut net = Network::new(mesh, NocConfig::default());
    let mut layer = DiscoLayer::new(eager(), Codec::delta(), mesh.nodes());
    let codec = Codec::delta();
    let line = CacheLine::from_u64_words([1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007]);
    let n_pkts = 40u64;
    for k in 0..n_pkts {
        let src = 1 + (k as usize % 8);
        let enc = codec.compress(&line);
        let tag = Msg::new(Op::DataToCore, 0, k).encode();
        net.send(
            NodeId(src),
            NodeId(0),
            PacketClass::Response,
            Payload::Compressed(enc),
            true,
            tag,
        );
    }
    let mut got = 0;
    while got < n_pkts {
        net.tick();
        layer.tick(&mut net);
        for pkt in net.take_delivered(NodeId(0)) {
            match &pkt.payload {
                Payload::Raw(l) => assert_eq!(*l, line),
                Payload::Compressed(c) => assert_eq!(codec.decompress(c).unwrap(), line),
                Payload::None => panic!("lost payload"),
            }
            got += 1;
        }
        assert!(net.now() < 100_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_lines_survive_eager_rewriting(seed in any::<u64>()) {
        let model = ValueModel::new(disco::workloads::ValueProfile::balanced(), seed);
        let lines: Vec<CacheLine> = (0..60).map(|a| model.line(a, 0)).collect();
        drive_and_check(&lines, &[Op::Writeback, Op::MemWriteback, Op::DataToCore]);
    }
}
