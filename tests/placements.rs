//! Cross-crate integration tests: the §4.1 placement comparison on the
//! full system — the invariants behind Figs. 5–8.

use disco::core::{CompressionPlacement, SimBuilder, SimReport};
use disco::workloads::Benchmark;

fn run(placement: CompressionPlacement, bench: Benchmark, len: usize) -> SimReport {
    SimBuilder::new()
        .mesh(4, 4)
        .placement(placement)
        .benchmark(bench)
        .trace_len(len)
        .seed(11)
        .run()
        .expect("simulation drains")
}

#[test]
fn all_placements_drain_on_all_benchmarks_small() {
    for bench in Benchmark::ALL {
        for placement in CompressionPlacement::ALL {
            let r = run(placement, bench, 300);
            assert!(
                r.demand_misses > 0,
                "{bench}/{placement}: no misses measured"
            );
            assert!(r.cycles > 0);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run(CompressionPlacement::Disco, Benchmark::Ferret, 800);
    let b = run(CompressionPlacement::Disco, Benchmark::Ferret, 800);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_miss_latency, b.total_miss_latency);
    assert_eq!(a.network.link_flits, b.network.link_flits);
    assert_eq!(a.disco.unwrap(), b.disco.unwrap());
}

#[test]
fn ideal_is_the_latency_lower_bound() {
    // The normalization basis of Figs. 5/6/8: no other compressed
    // configuration beats Ideal.
    let bench = Benchmark::Dedup;
    let ideal = run(CompressionPlacement::Ideal, bench, 2_000);
    for placement in [
        CompressionPlacement::CacheOnly,
        CompressionPlacement::CacheAndNi,
        CompressionPlacement::Disco,
    ] {
        let r = run(placement, bench, 2_000);
        assert!(
            r.avg_access_latency() >= ideal.avg_access_latency() * 0.995,
            "{placement} ({}) must not beat Ideal ({})",
            r.avg_access_latency(),
            ideal.avg_access_latency()
        );
    }
}

#[test]
fn disco_beats_cc_and_cnc_under_load() {
    // The headline Fig. 5 ordering, on a congested workload.
    let bench = Benchmark::Dedup;
    let disco = run(CompressionPlacement::Disco, bench, 4_000);
    let cc = run(CompressionPlacement::CacheOnly, bench, 4_000);
    let cnc = run(CompressionPlacement::CacheAndNi, bench, 4_000);
    assert!(
        disco.avg_access_latency() < cc.avg_access_latency(),
        "DISCO ({}) must beat CC ({})",
        disco.avg_access_latency(),
        cc.avg_access_latency()
    );
    assert!(
        disco.avg_access_latency() < cnc.avg_access_latency() * 1.02,
        "DISCO ({}) must at least match CNC ({})",
        disco.avg_access_latency(),
        cnc.avg_access_latency()
    );
}

#[test]
fn compressed_traffic_reduces_flits() {
    let bench = Benchmark::X264;
    let baseline = run(CompressionPlacement::Baseline, bench, 2_000);
    let ideal = run(CompressionPlacement::Ideal, bench, 2_000);
    let disco = run(CompressionPlacement::Disco, bench, 2_000);
    assert!(ideal.network.link_flits < baseline.network.link_flits);
    assert!(
        disco.network.link_flits < baseline.network.link_flits,
        "in-network compression must remove traffic"
    );
}

#[test]
fn compressed_storage_reduces_capacity_misses() {
    // canneal's working set exceeds the 4 MB LLC; compression must buy
    // hit rate (the classic cache-compression benefit).
    let baseline = run(CompressionPlacement::Baseline, Benchmark::Canneal, 10_000);
    let ideal = run(CompressionPlacement::Ideal, Benchmark::Canneal, 10_000);
    assert!(
        ideal.banks.miss_rate() < baseline.miss_rate_margin(),
        "compressed banks must miss less: {} vs {}",
        ideal.banks.miss_rate(),
        baseline.banks.miss_rate()
    );
}

trait MissRateMargin {
    fn miss_rate_margin(&self) -> f64;
}

impl MissRateMargin for SimReport {
    fn miss_rate_margin(&self) -> f64 {
        self.banks.miss_rate() * 0.999
    }
}

#[test]
fn disco_layer_is_active_under_congestion() {
    let disco = run(CompressionPlacement::Disco, Benchmark::Canneal, 3_000);
    let stats = disco.disco.expect("disco placement has layer stats");
    assert!(stats.compressions > 0, "engines must compress: {stats:?}");
    assert!(
        stats.decompressions > 0,
        "engines must decompress: {stats:?}"
    );
    assert!(stats.flits_saved > 0);
}

#[test]
fn energy_ordering_matches_fig7() {
    // DISCO must use less memory-subsystem energy than the uncompressed
    // baseline and than CNC (Fig. 7).
    let bench = Benchmark::Dedup;
    let baseline = run(CompressionPlacement::Baseline, bench, 3_000);
    let disco = run(CompressionPlacement::Disco, bench, 3_000);
    let cnc = run(CompressionPlacement::CacheAndNi, bench, 3_000);
    assert!(
        disco.total_energy_pj() < baseline.total_energy_pj(),
        "DISCO {} vs baseline {}",
        disco.total_energy_pj(),
        baseline.total_energy_pj()
    );
    assert!(
        disco.total_energy_pj() < cnc.total_energy_pj() * 1.05,
        "DISCO {} must be within/below CNC {}",
        disco.total_energy_pj(),
        cnc.total_energy_pj()
    );
}

#[test]
fn non_disco_placements_have_no_layer_stats() {
    let cc = run(CompressionPlacement::CacheOnly, Benchmark::Swaptions, 300);
    assert!(cc.disco.is_none());
}

#[test]
fn every_routing_algorithm_drains_the_full_system() {
    use disco::noc::{NocConfig, RoutingAlgorithm};
    for routing in [
        RoutingAlgorithm::Xy,
        RoutingAlgorithm::Yx,
        RoutingAlgorithm::O1Turn,
        RoutingAlgorithm::WestFirst,
    ] {
        let r = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Ferret)
            .trace_len(800)
            .noc(NocConfig {
                routing,
                ..NocConfig::default()
            })
            .seed(11)
            .run()
            .unwrap_or_else(|e| panic!("{routing:?}: {e}"));
        assert!(r.demand_misses > 0, "{routing:?}");
    }
}

#[test]
fn shallow_buffers_disable_in_network_decompression() {
    use disco::noc::NocConfig;
    // A 4-flit buffer cannot hold the 8 raw flits a decompression
    // produces; compression (which shrinks) must keep working.
    let r = SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Canneal)
        .trace_len(2_000)
        .noc(NocConfig {
            buffer_depth: 4,
            ..NocConfig::default()
        })
        .seed(11)
        .run()
        .expect("drains");
    let d = r.disco.expect("disco stats");
    assert_eq!(d.decompressions, 0, "{d:?}");
    assert!(d.compressions > 0, "{d:?}");
}

#[test]
fn extra_virtual_channels_help_under_load() {
    use disco::noc::NocConfig;
    // 4 VCs split into two 2-VC virtual networks: head-of-line blocking
    // drops and more packets fly concurrently.
    let two = SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Canneal)
        .trace_len(2_000)
        .seed(11)
        .run()
        .expect("drains");
    let four = SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Canneal)
        .trace_len(2_000)
        .noc(NocConfig {
            vcs: 4,
            ..NocConfig::default()
        })
        .seed(11)
        .run()
        .expect("drains");
    // More VCs deepen the in-flight queues (per-packet latency may rise
    // at high load — the classic buffering effect), but end-to-end
    // progress must not regress: same work, comparable completion time.
    assert!(four.demand_misses > 0);
    assert!(
        four.cycles as f64 <= two.cycles as f64 * 1.05,
        "4 VCs ({} cycles) must not slow completion vs 2 VCs ({})",
        four.cycles,
        two.cycles
    );
    // Per-miss latency may deepen somewhat (packets queue in the extra
    // buffers instead of stalling at the NI), but not catastrophically.
    assert!(
        four.avg_onchip_latency() <= two.avg_onchip_latency() * 1.25,
        "demand latency must stay in the same regime: {:.1} vs {:.1}",
        four.avg_onchip_latency(),
        two.avg_onchip_latency()
    );
}
