//! Golden-file regression test: a fixed-seed simulation must reproduce
//! its recorded stats byte-for-byte. Any intentional change to the
//! simulator's behaviour shows up here as a readable stats diff;
//! regenerate with `UPDATE_GOLDEN=1 cargo test --test golden`.

use disco::core::{CompressionPlacement, SimBuilder};
use disco::workloads::Benchmark;
use std::path::Path;

fn current_stats() -> String {
    let report = SimBuilder::new()
        .mesh(2, 2)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Dedup)
        .trace_len(400)
        .seed(2016)
        .run()
        .expect("golden run drains");
    let mut buf = Vec::new();
    report.write_stats(&mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("stats are utf8")
}

#[test]
fn fixed_seed_run_matches_golden_stats() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_stats.txt");
    let current = current_stats();
    // The golden run never arms a fault plan, so no `faults.*` keys may
    // appear even on `--features faults` builds (the stats file must be
    // identical across feature legs).
    assert!(
        !current.contains("faults."),
        "fault keys leaked into a fault-free run"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &current).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
        panic!(
            "missing {golden_path:?}; run `UPDATE_GOLDEN=1 cargo test --test golden` to create it"
        )
    });
    if golden != current {
        // Produce a line diff so the regression is readable.
        let mut diff = String::new();
        for (g, c) in golden.lines().zip(current.lines()) {
            if g != c {
                diff.push_str(&format!("  - {g}\n  + {c}\n"));
            }
        }
        panic!(
            "fixed-seed stats diverged from the golden file \
             (intentional? UPDATE_GOLDEN=1 cargo test --test golden):\n{diff}"
        );
    }
}
