//! Integration tests across `disco-compress` and `disco-workloads`:
//! every codec must round-trip every line the value models generate, and
//! the measured ratios must reproduce the Table 1 ordering.

use disco::compress::{scheme::Compressor, CacheLine, Codec, CompressionStats, SchemeKind};
use disco::workloads::{Benchmark, ValueModel};

fn corpus(bench: Benchmark, n: u64) -> Vec<CacheLine> {
    let model = ValueModel::new(bench.profile().value, 99);
    (0..n).map(|a| model.line(a, (a % 3) as u32)).collect()
}

#[test]
fn every_codec_roundtrips_every_benchmark_corpus() {
    for bench in Benchmark::ALL {
        let lines = corpus(bench, 300);
        for kind in SchemeKind::ALL {
            let codec = Codec::from_kind(kind);
            for line in &lines {
                let enc = codec.compress(line);
                assert_eq!(
                    codec.decompress(&enc).expect("valid encoding"),
                    *line,
                    "{kind} failed on a {bench} line"
                );
            }
        }
    }
}

fn mean_ratio(kind: SchemeKind, lines: &[CacheLine]) -> f64 {
    // SC² is statistical: train it on the corpus it will compress, as the
    // hardware trains on sampled cache contents.
    let codec = if kind == SchemeKind::Sc2 {
        Codec::Sc2(disco::compress::sc2::Sc2Codec::train(lines))
    } else {
        Codec::from_kind(kind)
    };
    let mut stats = CompressionStats::new();
    for line in lines {
        stats.record(&codec.compress(line));
    }
    stats.mean_ratio()
}

#[test]
fn sc2_has_the_highest_ratio_like_table1() {
    // Pool lines over all benchmarks (the "average workload" of Table 1).
    let mut lines = Vec::new();
    for bench in Benchmark::ALL {
        lines.extend(corpus(bench, 150));
    }
    let sc2 = mean_ratio(SchemeKind::Sc2, &lines);
    for kind in [
        SchemeKind::Delta,
        SchemeKind::Fpc,
        SchemeKind::Sfpc,
        SchemeKind::Bdi,
    ] {
        let r = mean_ratio(kind, &lines);
        assert!(
            sc2 > r * 0.98,
            "SC2 ({sc2:.2}) should compress at least as well as {kind} ({r:.2})"
        );
    }
}

#[test]
fn sfpc_trades_ratio_for_speed_vs_fpc() {
    let mut lines = Vec::new();
    for bench in Benchmark::ALL {
        lines.extend(corpus(bench, 100));
    }
    let fpc = mean_ratio(SchemeKind::Fpc, &lines);
    let sfpc = mean_ratio(SchemeKind::Sfpc, &lines);
    assert!(sfpc <= fpc, "SFPC ({sfpc:.2}) must not beat FPC ({fpc:.2})");
    // And SFPC decodes faster (Table 1: 4 vs 5 cycles).
    let f = Codec::fpc();
    let s = Codec::sfpc();
    let line = CacheLine::zeroed();
    assert!(
        s.decompression_latency(&s.compress(&line)) < f.decompression_latency(&f.compress(&line))
    );
}

#[test]
fn delta_and_bdi_agree_on_family_strengths() {
    // Both are base-delta schemes; on near-base pointer data both must
    // compress well.
    let model = ValueModel::new(
        disco::workloads::ValueProfile {
            zero: 0.0,
            near_base: 1.0,
            small_int: 0.0,
            repeated: 0.0,
            float_like: 0.0,
        },
        5,
    );
    let lines: Vec<CacheLine> = (0..200).map(|a| model.line(a, 0)).collect();
    assert!(mean_ratio(SchemeKind::Delta, &lines) > 2.5);
    assert!(mean_ratio(SchemeKind::Bdi, &lines) > 2.5);
}

#[test]
fn compressibility_tracks_benchmark_profiles() {
    // x264 (many zeros/small ints) must compress much better than dedup
    // (hash-heavy) under every codec family.
    let x264 = corpus(Benchmark::X264, 400);
    let dedup = corpus(Benchmark::Dedup, 400);
    for kind in SchemeKind::ALL {
        assert!(
            mean_ratio(kind, &x264) > mean_ratio(kind, &dedup),
            "{kind}: x264 must compress better than dedup"
        );
    }
}
